package algorithms

import (
	"strings"
	"testing"

	"repro/internal/bisim"
	"repro/internal/core"
	"repro/internal/lts"
	"repro/internal/machine"
	"repro/internal/refine"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("registry has %d entries, want 21 (15 Table II rows + 6 extensions)", len(all))
	}
	if len(TableII()) != 15 {
		t.Fatalf("TableII has %d entries, want 15", len(TableII()))
	}
	for _, a := range TableII() {
		if a.Extension {
			t.Fatalf("%s: extension leaked into TableII", a.ID)
		}
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.ID == "" || a.Display == "" {
			t.Fatalf("entry missing ID or Display: %+v", a)
		}
		if seen[a.ID] {
			t.Fatalf("duplicate ID %s", a.ID)
		}
		seen[a.ID] = true
		if a.Build == nil || a.Spec == nil {
			t.Fatalf("%s: missing Build or Spec", a.ID)
		}
		got, err := ByID(a.ID)
		if err != nil || got.ID != a.ID {
			t.Fatalf("ByID(%s) = %v, %v", a.ID, got, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("ByID must reject unknown IDs")
	}
}

func TestAllProgramsValidate(t *testing.T) {
	cfg := Config{Threads: 2, Ops: 2}
	for _, a := range All() {
		if err := a.Build(cfg).Validate(); err != nil {
			t.Errorf("%s impl: %v", a.ID, err)
		}
		if err := a.Spec(cfg).Validate(); err != nil {
			t.Errorf("%s spec: %v", a.ID, err)
		}
		if a.Abstract != nil {
			if err := a.Abstract(cfg).Validate(); err != nil {
				t.Errorf("%s abstract: %v", a.ID, err)
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	if got := (Config{}).Values(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("default values = %v", got)
	}
	if got := (Config{Vals: []int32{5}}).Values(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("custom values = %v", got)
	}
}

// TestTableIIVerdicts checks every row of Table II at 2 threads × 2 ops:
// linearizability for all 15 entries and lock-freedom for the
// non-blocking ones. The two bugs the paper reports must reproduce.
func TestTableIIVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("state-space exploration in -short mode")
	}
	cfg := Config{Threads: 2, Ops: 2}
	ccfg := core.Config{Threads: 2, Ops: 2}
	for _, a := range TableII() {
		a := a
		t.Run(a.ID, func(t *testing.T) {
			lin, err := core.CheckLinearizability(a.Build(cfg), a.Spec(cfg), ccfg)
			if err != nil {
				t.Fatalf("linearizability check: %v", err)
			}
			if lin.Linearizable != a.ExpectLinearizable {
				t.Errorf("linearizable = %v, want %v", lin.Linearizable, a.ExpectLinearizable)
			}
			if !lin.Linearizable && lin.Counterexample == nil {
				t.Error("negative verdict must carry a counterexample")
			}
			if lin.ImplQuotientStates >= lin.ImplStates {
				t.Errorf("quotient (%d) not smaller than object (%d)", lin.ImplQuotientStates, lin.ImplStates)
			}
			if a.LockBased {
				return
			}
			lf, err := core.CheckLockFreeAuto(a.Build(cfg), ccfg)
			if err != nil {
				t.Fatalf("lock-freedom check: %v", err)
			}
			if lf.LockFree != a.ExpectLockFree {
				t.Errorf("lock-free = %v, want %v", lf.LockFree, a.ExpectLockFree)
			}
			if !lf.LockFree {
				if lf.Divergence == nil {
					t.Fatal("negative verdict must carry a divergence")
				}
				// The divergence must be a genuine τ-lasso.
				for _, st := range lf.Divergence.Steps[lf.Divergence.Cycle:] {
					if !lts.IsTau(st.Action) {
						t.Error("divergence cycle contains a visible action")
					}
				}
			}
		})
	}
}

// TestHMListDoubleRemove pins the shape of the known HM-list bug: the
// counterexample ends with two consecutive successful removes of the
// same key (Section VI.F of the paper).
func TestHMListDoubleRemove(t *testing.T) {
	cfg := Config{Threads: 2, Ops: 2}
	a, err := ByID("hm-list-buggy")
	if err != nil {
		t.Fatal(err)
	}
	lin, err := core.CheckLinearizability(a.Build(cfg), a.Spec(cfg), core.Config{Threads: 2, Ops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lin.Linearizable {
		t.Fatal("the buggy HM list must not be linearizable")
	}
	trace := lin.Counterexample.Trace
	removes := 0
	for _, act := range trace {
		if strings.Contains(act, "ret.Remove(true)") {
			removes++
		}
	}
	if removes < 2 {
		t.Fatalf("counterexample %v should contain two successful removes", trace)
	}
}

// TestFuStackDivergence pins the shape of the new bug: the divergence
// cycle sits in the reclaiming pop (label H7), one thread spinning on
// another's hazard pointer.
func TestFuStackDivergence(t *testing.T) {
	cfg := Config{Threads: 2, Ops: 2}
	a, err := ByID("treiber-hp-fu")
	if err != nil {
		t.Fatal(err)
	}
	lf, err := core.CheckLockFreeAuto(a.Build(cfg), core.Config{Threads: 2, Ops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lf.LockFree {
		t.Fatal("the revised Treiber+HP stack must violate lock-freedom")
	}
	if lf.Divergence == nil {
		t.Fatal("missing divergence diagnostic")
	}
	formatted := lf.Divergence.Format()
	if !strings.Contains(formatted, "H7") {
		t.Fatalf("divergence should spin at the reclamation scan H7:\n%s", formatted)
	}
}

// TestAbstractPrograms checks Theorem 5.8's premise for the four
// algorithms the paper builds abstractions for: the concrete object is
// divergence-sensitive branching bisimilar to its abstract program, and
// the abstraction is strictly smaller.
func TestAbstractPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("state-space exploration in -short mode")
	}
	cfg := Config{Threads: 2, Ops: 2}
	for _, id := range []string{"ms-queue", "dglm-queue", "ccas", "rdcss"} {
		a, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.Abstract == nil {
			t.Fatalf("%s: abstract program missing", id)
		}
		res, err := core.CheckLockFreeAbstract(a.Build(cfg), a.Abstract(cfg), core.Config{Threads: 2, Ops: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Bisimilar {
			t.Errorf("%s: not ≈div its abstract program", id)
		}
		if !res.LockFree {
			t.Errorf("%s: abstract program not lock-free", id)
		}
		if res.AbstractStates >= res.ImplStates {
			t.Errorf("%s: abstraction (%d states) not smaller than object (%d)", id, res.AbstractStates, res.ImplStates)
		}
	}
}

// TestMSAndDGLMShareQuotient checks the Table VI observation that the MS
// and DGLM queues — and their shared abstract queue — all have the same
// branching-bisimulation quotient.
func TestMSAndDGLMShareQuotient(t *testing.T) {
	cfg := Config{Threads: 2, Ops: 2}
	ccfg := core.Config{Threads: 2, Ops: 2}
	ms, err := ByID("ms-queue")
	if err != nil {
		t.Fatal(err)
	}
	dglm, err := ByID("dglm-queue")
	if err != nil {
		t.Fatal(err)
	}
	rMS, err := core.CheckLinearizability(ms.Build(cfg), ms.Spec(cfg), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	rDGLM, err := core.CheckLinearizability(dglm.Build(cfg), dglm.Spec(cfg), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if rMS.ImplQuotientStates != rDGLM.ImplQuotientStates {
		t.Errorf("MS quotient %d != DGLM quotient %d", rMS.ImplQuotientStates, rDGLM.ImplQuotientStates)
	}
	if rDGLM.ImplStates >= rMS.ImplStates {
		t.Errorf("DGLM (%d states) should be smaller than MS (%d): it is the optimized variant", rDGLM.ImplStates, rMS.ImplStates)
	}
}

// TestHPStackReusesMemory checks that the hazard-pointer model really
// exercises reclamation: some execution frees and reuses a heap cell.
// We detect reuse indirectly: with explicit Free, the correct HP stack
// must stay linearizable (reuse is safe under validation) while its
// state space differs from plain Treiber's.
func TestHPStackReusesMemory(t *testing.T) {
	cfg := Config{Threads: 2, Ops: 2}
	acts := lts.NewAlphabet()
	labels := lts.NewAlphabet()
	plain, err := machine.Explore(Treiber(cfg), machine.Options{Threads: 2, Ops: 2, Acts: acts, Labels: labels})
	if err != nil {
		t.Fatal(err)
	}
	hpAlg, err := ByID("treiber-hp")
	if err != nil {
		t.Fatal(err)
	}
	hp, err := machine.Explore(hpAlg.Build(cfg), machine.Options{Threads: 2, Ops: 2, Acts: acts, Labels: labels})
	if err != nil {
		t.Fatal(err)
	}
	if hp.NumStates() <= plain.NumStates() {
		t.Errorf("HP stack (%d states) should be larger than plain Treiber (%d)", hp.NumStates(), plain.NumStates())
	}
}

// TestABAExtension checks the packaged ABA demonstration: immediate
// unsafe reclamation breaks linearizability (at 2 threads × 3 ops, where
// a stale snapshot can survive a free/realloc cycle) while remaining
// lock-free.
func TestABAExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	a, err := ByID("treiber-unsafe-free")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Extension {
		t.Fatal("treiber-unsafe-free must be marked as an extension")
	}
	cfg := Config{Threads: 2, Ops: 3}
	ccfg := core.Config{Threads: 2, Ops: 3}
	lin, err := core.CheckLinearizability(a.Build(cfg), a.Spec(cfg), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Linearizable {
		t.Fatal("unsafe reclamation must break linearizability (ABA)")
	}
	lf, err := core.CheckLockFreeAuto(a.Build(cfg), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if !lf.LockFree {
		t.Fatal("the ABA variant stays lock-free")
	}
}

// TestLockBasedListsDeadlockFree checks the sanity property for the
// bottom half of Table II: the lock-based lists acquire locks in list
// order (or hand over hand), so no reachable state blocks every thread.
func TestLockBasedListsDeadlockFree(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	cfg := Config{Threads: 2, Ops: 2}
	for _, a := range All() {
		if !a.LockBased {
			continue
		}
		res, err := core.CheckDeadlockFree(a.Build(cfg), core.Config{Threads: 2, Ops: 2})
		if err != nil {
			t.Fatalf("%s: %v", a.ID, err)
		}
		if !res.DeadlockFree {
			t.Errorf("%s deadlocks:\n%s", a.ID, res.Witness.Format())
		}
	}
}

// TestExtensionVerdicts verifies the packaged extension algorithms at
// 2 threads × 2 ops: the two-lock queue, coarse list and spin-lock stack
// are linearizable and deadlock-free; Harris's list and the version-tagged
// Treiber stack are linearizable and lock-free (the latter despite
// explicit reuse).
func TestExtensionVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	cfg := Config{Threads: 2, Ops: 2}
	ccfg := core.Config{Threads: 2, Ops: 2}
	for _, id := range []string{"two-lock-queue", "coarse-list", "harris-list", "treiber-versioned", "spinlock-stack"} {
		a, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := core.CheckLinearizability(a.Build(cfg), a.Spec(cfg), ccfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if lin.Linearizable != a.ExpectLinearizable {
			t.Errorf("%s: linearizable = %v, want %v", id, lin.Linearizable, a.ExpectLinearizable)
		}
		if a.LockBased {
			dl, err := core.CheckDeadlockFree(a.Build(cfg), ccfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if !dl.DeadlockFree {
				t.Errorf("%s deadlocks:\n%s", id, dl.Witness.Format())
			}
			continue
		}
		lf, err := core.CheckLockFreeAuto(a.Build(cfg), ccfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if lf.LockFree != a.ExpectLockFree {
			t.Errorf("%s: lock-free = %v, want %v", id, lf.LockFree, a.ExpectLockFree)
		}
	}
}

// TestVersionedStackDefeatsABA contrasts the two reclamation extensions
// at the instance where the unsafe variant breaks: with version tags the
// same free/reuse pattern stays linearizable.
func TestVersionedStackDefeatsABA(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	cfg := Config{Threads: 2, Ops: 3}
	ccfg := core.Config{Threads: 2, Ops: 3}
	unsafeAlg, err := ByID("treiber-unsafe-free")
	if err != nil {
		t.Fatal(err)
	}
	versioned, err := ByID("treiber-versioned")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := core.CheckLinearizability(unsafeAlg.Build(cfg), unsafeAlg.Spec(cfg), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	good, err := core.CheckLinearizability(versioned.Build(cfg), versioned.Spec(cfg), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Linearizable {
		t.Error("unsafe free must exhibit ABA at 2x3")
	}
	if !good.Linearizable {
		t.Error("versioned CAS must defeat ABA at 2x3")
	}
}

// TestHarrisListBatchSnip checks the distinguishing feature of Harris's
// list against Harris–Michael: both are linearizable and lock-free here,
// and Harris's search may unlink several marked nodes with one CAS —
// observable as a smaller or equal count of physical-removal steps. We
// settle for verifying both lists agree on all verdicts.
func TestHarrisListBatchSnip(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	cfg := Config{Threads: 2, Ops: 3}
	ccfg := core.Config{Threads: 2, Ops: 3}
	for _, id := range []string{"harris-list", "hm-list"} {
		a, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := core.CheckLinearizability(a.Build(cfg), a.Spec(cfg), ccfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !lin.Linearizable {
			t.Errorf("%s: not linearizable at 2x3: %v", id, lin.Counterexample.Trace)
		}
		lf, err := core.CheckLockFreeAuto(a.Build(cfg), ccfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !lf.LockFree {
			t.Errorf("%s: not lock-free at 2x3", id)
		}
	}
}

// TestTheorem53QuotientSoundness checks Theorems 5.2/5.3 empirically on
// real objects: trace refinement decided on the full systems agrees with
// trace refinement decided on the branching-bisimulation quotients, for
// both a correct and a buggy algorithm.
func TestTheorem53QuotientSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	for _, id := range []string{"treiber", "hm-list-buggy", "newcas"} {
		a, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Threads: 2, Ops: 2}
		acts := lts.NewAlphabet()
		labels := lts.NewAlphabet()
		opts := machine.Options{Threads: 2, Ops: 2, Acts: acts, Labels: labels}
		impl, err := machine.Explore(a.Build(cfg), opts)
		if err != nil {
			t.Fatal(err)
		}
		specLTS, err := machine.Explore(a.Spec(cfg), opts)
		if err != nil {
			t.Fatal(err)
		}
		full, err := refine.TraceInclusion(impl, specLTS)
		if err != nil {
			t.Fatal(err)
		}
		implQ, _ := bisim.ReduceBranching(impl)
		specQ, _ := bisim.ReduceBranching(specLTS)
		quot, err := refine.TraceInclusion(implQ, specQ)
		if err != nil {
			t.Fatal(err)
		}
		if full.Included != quot.Included {
			t.Errorf("%s: full-system refinement %v but quotient refinement %v", id, full.Included, quot.Included)
		}
		if full.Included != a.ExpectLinearizable {
			t.Errorf("%s: refinement %v, expected linearizable=%v", id, full.Included, a.ExpectLinearizable)
		}
		// Counterexamples from the quotient must replay on the full system
		// and be rejected by the full specification.
		if !quot.Included {
			if !lts.HasTrace(impl, quot.Counterexample.Trace) {
				t.Errorf("%s: quotient counterexample does not replay on the object", id)
			}
			if lts.HasTrace(specLTS, quot.Counterexample.Trace) {
				t.Errorf("%s: quotient counterexample is allowed by the specification", id)
			}
		}
	}
}
