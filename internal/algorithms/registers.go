package algorithms

import (
	"repro/internal/machine"
	"repro/internal/spec"
)

// NewCAS builds the concrete NewCompareAndSet register of Fig. 4: a retry
// loop of read (N1) and CAS (N2) that returns the register's prior value.
func NewCAS(Config) *machine.Program {
	const gR = 0
	const locPrior = 0
	return &machine.Program{
		Name:    "newcas",
		Globals: machine.Schema{Names: []string{"r"}, Kinds: []machine.VarKind{machine.KVal}},
		NLocals: 1,
		Methods: []machine.Method{{
			Name: "NewCAS",
			Args: spec.PairArgs(),
			Body: []machine.Stmt{
				{Label: "N1", Exec: func(c *machine.Ctx) {
					exp, _ := spec.DecodePair(c.Arg)
					prior := c.V(gR)
					if prior != exp {
						c.Return(prior)
						return
					}
					c.L[locPrior] = prior
					c.Goto(1)
				}},
				{Label: "N2", Exec: func(c *machine.Ctx) {
					exp, val := spec.DecodePair(c.Arg)
					if c.CASV(gR, exp, val) {
						c.Return(exp)
					} else {
						c.Goto(0)
					}
				}},
			},
		}},
		FormatArg: spec.FormatPair,
	}
}

func newCASAlg() *Algorithm {
	return &Algorithm{
		ID:                 "newcas",
		Display:            "NewCompareAndSet",
		Ref:                "",
		ExpectLinearizable: true,
		ExpectLockFree:     true,
		Build:              NewCAS,
		Spec:               func(Config) *machine.Program { return spec.NewCAS() },
	}
}

// CCAS builds the conditional-CAS of Turon et al. [29]: CCAS(e,n)
// installs a descriptor into the register with CAS, then completes it by
// writing n if the condition flag is clear (or restoring e if set);
// threads that encounter a foreign descriptor help complete it first.
// The flag read inside complete is the operation's non-fixed
// linearization point.
func CCAS(cfg Config) *machine.Program {
	const (
		gR    = 0
		gFlag = 1
	)
	const (
		locD   = 0 // own descriptor
		locCur = 1 // last read of r (tagged)
	)
	completeCAS := func(c *machine.Ctx, ref int32, flagClear bool) {
		d := c.Node(machine.Deref(ref))
		if flagClear {
			c.CASV(gR, ref, d.Key) // write new
		} else {
			c.CASV(gR, ref, d.Val) // restore expected
		}
	}
	return &machine.Program{
		Name: "ccas",
		Globals: machine.Schema{
			Names: []string{"r", "flag"},
			Kinds: []machine.VarKind{machine.KTagged, machine.KVal},
		},
		HeapCap:    cfg.totalOps() + 1,
		NLocals:    2,
		LocalKinds: []machine.VarKind{machine.KPtr, machine.KTagged},
		Methods: []machine.Method{
			{
				Name: "CCAS",
				Args: spec.PairArgs(),
				Body: []machine.Stmt{
					{Label: "C1", Exec: func(c *machine.Ctx) {
						exp, val := spec.DecodePair(c.Arg)
						d := c.Alloc(kindDesc)
						c.Node(d).Val = exp // expected
						c.Node(d).Key = val // new
						c.L[locD] = d
						c.Goto(1)
					}},
					{Label: "C2", Exec: func(c *machine.Ctx) {
						exp, _ := spec.DecodePair(c.Arg)
						cur := c.V(gR)
						if cur == exp {
							c.SetV(gR, machine.Ref(c.L[locD])) // install
							c.Goto(2)
							return
						}
						if machine.IsRef(cur) {
							c.L[locCur] = cur
							c.Goto(3) // help
							return
						}
						c.Return(cur) // condition failed
					}},
					// Complete own descriptor. The flag read is the
					// operation's (non-fixed) linearization point; it forms
					// one guarded atomic statement with the completing CAS,
					// as in the paper's LNT models.
					{Label: "C3", Exec: func(c *machine.Ctx) {
						exp, _ := spec.DecodePair(c.Arg)
						completeCAS(c, machine.Ref(c.L[locD]), c.V(gFlag) == 0)
						c.Return(exp)
					}},
					// Help a foreign descriptor, then retry.
					{Label: "C4", Exec: func(c *machine.Ctx) {
						completeCAS(c, c.L[locCur], c.V(gFlag) == 0)
						c.Goto(1)
					}},
				},
			},
			{
				Name: "SetFlag",
				Args: []int32{0, 1},
				Body: []machine.Stmt{{
					Label: "CF", Exec: func(c *machine.Ctx) {
						c.SetV(gFlag, c.Arg)
						c.Return(machine.ValOK)
					},
				}},
			},
		},
		FormatArg: func(m *machine.Method, arg int32) string {
			if m.Name == "CCAS" {
				return spec.FormatPair(m, arg)
			}
			return machine.FormatValue(arg)
		},
	}
}

// AbstractCCAS is the Theorem 5.8 abstraction of CCAS: a coarser-grained
// concurrent implementation that keeps the descriptor-installation
// structure (which is externally observable through helping) but merges
// each flag-read-and-complete pair into a single atomic block, shrinking
// every CCAS to at most two atomic blocks plus the atomic help.
func AbstractCCAS(cfg Config) *machine.Program {
	const (
		gR    = 0
		gFlag = 1
	)
	const locD = 0
	complete := func(c *machine.Ctx, ref int32) {
		d := c.Node(machine.Deref(ref))
		if c.V(gFlag) == 0 {
			c.CASV(gR, ref, d.Key)
		} else {
			c.CASV(gR, ref, d.Val)
		}
	}
	return &machine.Program{
		Name: "abstract-ccas",
		Globals: machine.Schema{
			Names: []string{"r", "flag"},
			Kinds: []machine.VarKind{machine.KTagged, machine.KVal},
		},
		HeapCap:    cfg.totalOps() + 1,
		NLocals:    1,
		LocalKinds: []machine.VarKind{machine.KPtr},
		Methods: []machine.Method{
			{
				Name: "CCAS",
				Args: spec.PairArgs(),
				Body: []machine.Stmt{
					{Label: "A1", Exec: func(c *machine.Ctx) {
						exp, val := spec.DecodePair(c.Arg)
						cur := c.V(gR)
						if machine.IsRef(cur) {
							complete(c, cur) // help atomically, then retry
							c.Goto(0)
							return
						}
						if cur != exp {
							c.Return(cur)
							return
						}
						d := c.Alloc(kindDesc)
						c.Node(d).Val = exp
						c.Node(d).Key = val
						c.L[locD] = d
						c.SetV(gR, machine.Ref(d)) // install
						c.Goto(1)
					}},
					{Label: "A2", Exec: func(c *machine.Ctx) {
						exp, _ := spec.DecodePair(c.Arg)
						complete(c, machine.Ref(c.L[locD]))
						c.Return(exp)
					}},
				},
			},
			{
				Name: "SetFlag",
				Args: []int32{0, 1},
				Body: []machine.Stmt{{
					Label: "AF", Exec: func(c *machine.Ctx) {
						c.SetV(gFlag, c.Arg)
						c.Return(machine.ValOK)
					},
				}},
			},
		},
		FormatArg: func(m *machine.Method, arg int32) string {
			if m.Name == "CCAS" {
				return spec.FormatPair(m, arg)
			}
			return machine.FormatValue(arg)
		},
	}
}

func ccasAlg() *Algorithm {
	return &Algorithm{
		ID:                 "ccas",
		Display:            "CCAS",
		Ref:                "[29]",
		NonFixedLPs:        true,
		ExpectLinearizable: true,
		ExpectLockFree:     true,
		Build:              CCAS,
		Spec:               func(Config) *machine.Program { return spec.CCAS() },
		Abstract:           AbstractCCAS,
	}
}

// RDCSS builds Harris et al.'s restricted double-compare single-swap
// [15] over a control register r1 and a data register r2: RDCSS installs
// a descriptor into r2, then completes by checking r1; readers and other
// RDCSS operations that find a descriptor help complete it.
func RDCSS(cfg Config) *machine.Program {
	const (
		gR1 = 0
		gR2 = 1
	)
	const (
		locD   = 0 // own descriptor
		locCur = 1 // foreign descriptor (tagged)
	)
	complete := func(c *machine.Ctx, ref, v1 int32) {
		d := c.Node(machine.Deref(ref))
		if v1 == d.Val { // r1 == o1: commit
			c.CASV(gR2, ref, d.C)
		} else { // roll back
			c.CASV(gR2, ref, d.Key)
		}
	}
	return &machine.Program{
		Name: "rdcss",
		Globals: machine.Schema{
			Names: []string{"r1", "r2"},
			Kinds: []machine.VarKind{machine.KVal, machine.KTagged},
		},
		HeapCap:    cfg.totalOps() + 1,
		NLocals:    2,
		LocalKinds: []machine.VarKind{machine.KPtr, machine.KTagged},
		Methods: []machine.Method{
			{
				Name: "RDCSS",
				Args: spec.TripleArgs(),
				Body: []machine.Stmt{
					{Label: "R1", Exec: func(c *machine.Ctx) {
						o1, o2, n2 := spec.DecodeTriple(c.Arg)
						d := c.Alloc(kindDesc)
						c.Node(d).Val = o1
						c.Node(d).Key = o2
						c.Node(d).C = n2
						c.L[locD] = d
						c.Goto(1)
					}},
					{Label: "R2", Exec: func(c *machine.Ctx) {
						_, o2, _ := spec.DecodeTriple(c.Arg)
						cur := c.V(gR2)
						if machine.IsRef(cur) {
							c.L[locCur] = cur
							c.Goto(3) // help
							return
						}
						if cur == o2 {
							c.SetV(gR2, machine.Ref(c.L[locD])) // install
							c.Goto(2)
							return
						}
						c.Return(cur) // data comparison failed
					}},
					// Complete own descriptor: the r1 read (the LP) and
					// the completing CAS form one guarded atomic statement.
					{Label: "R3", Exec: func(c *machine.Ctx) {
						_, o2, _ := spec.DecodeTriple(c.Arg)
						complete(c, machine.Ref(c.L[locD]), c.V(gR1))
						c.Return(o2)
					}},
					// Help a foreign descriptor, then retry.
					{Label: "R4", Exec: func(c *machine.Ctx) {
						complete(c, c.L[locCur], c.V(gR1))
						c.Goto(1)
					}},
				},
			},
			{
				Name: "Write1",
				Args: []int32{0, 1},
				Body: []machine.Stmt{{
					Label: "W1", Exec: func(c *machine.Ctx) {
						c.SetV(gR1, c.Arg)
						c.Return(machine.ValOK)
					},
				}},
			},
		},
		FormatArg: func(m *machine.Method, arg int32) string {
			if m.Name == "RDCSS" {
				return spec.FormatTriple(m, arg)
			}
			return machine.FormatValue(arg)
		},
	}
}

// AbstractRDCSS is the Theorem 5.8 abstraction of RDCSS, mirroring
// AbstractCCAS: the descriptor installation stays (it is observable via
// helping), while each r1-read-and-complete pair becomes one atomic
// block.
func AbstractRDCSS(cfg Config) *machine.Program {
	const (
		gR1 = 0
		gR2 = 1
	)
	const locD = 0
	complete := func(c *machine.Ctx, ref int32) {
		d := c.Node(machine.Deref(ref))
		if c.V(gR1) == d.Val {
			c.CASV(gR2, ref, d.C)
		} else {
			c.CASV(gR2, ref, d.Key)
		}
	}
	return &machine.Program{
		Name: "abstract-rdcss",
		Globals: machine.Schema{
			Names: []string{"r1", "r2"},
			Kinds: []machine.VarKind{machine.KVal, machine.KTagged},
		},
		HeapCap:    cfg.totalOps() + 1,
		NLocals:    1,
		LocalKinds: []machine.VarKind{machine.KPtr},
		Methods: []machine.Method{
			{
				Name: "RDCSS",
				Args: spec.TripleArgs(),
				Body: []machine.Stmt{
					{Label: "A1", Exec: func(c *machine.Ctx) {
						o1, o2, n2 := spec.DecodeTriple(c.Arg)
						cur := c.V(gR2)
						if machine.IsRef(cur) {
							complete(c, cur) // help atomically, then retry
							c.Goto(0)
							return
						}
						if cur != o2 {
							c.Return(cur)
							return
						}
						d := c.Alloc(kindDesc)
						c.Node(d).Val = o1
						c.Node(d).Key = o2
						c.Node(d).C = n2
						c.L[locD] = d
						c.SetV(gR2, machine.Ref(d)) // install
						c.Goto(1)
					}},
					{Label: "A2", Exec: func(c *machine.Ctx) {
						_, o2, _ := spec.DecodeTriple(c.Arg)
						complete(c, machine.Ref(c.L[locD]))
						c.Return(o2)
					}},
				},
			},
			{
				Name: "Write1",
				Args: []int32{0, 1},
				Body: []machine.Stmt{{
					Label: "AW", Exec: func(c *machine.Ctx) {
						c.SetV(gR1, c.Arg)
						c.Return(machine.ValOK)
					},
				}},
			},
		},
		FormatArg: func(m *machine.Method, arg int32) string {
			if m.Name == "RDCSS" {
				return spec.FormatTriple(m, arg)
			}
			return machine.FormatValue(arg)
		},
	}
}

func rdcssAlg() *Algorithm {
	return &Algorithm{
		ID:                 "rdcss",
		Display:            "RDCSS",
		Ref:                "[15]",
		NonFixedLPs:        true, // per Table I (Table II leaves the cell blank)
		ExpectLinearizable: true,
		ExpectLockFree:     true,
		Build:              RDCSS,
		Spec:               func(Config) *machine.Program { return spec.RDCSS() },
		Abstract:           AbstractRDCSS,
	}
}
