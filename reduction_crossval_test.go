package bbv_test

import (
	"testing"

	bbvlexamples "repro/examples/bbvl"
	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/bbvl"
	"repro/internal/core"
	"repro/internal/statestore"
)

// TestReductionCrossValidation is the end-to-end guarantee behind the
// -reduction flag: for every embedded BBVL model (whose IR licenses
// real τ-confluence pruning) and for hand-coded Table II registry
// programs (no IR — the provider yields nil and reduction must be an
// exact no-op), the full and the reduced exploration produce identical
// verdicts AND identical quotient block counts, sequentially, with 8
// workers, and with an 8 MiB memory budget spilling state storage to
// disk. Only the raw explored-state count may shrink — and for the
// lock-based models it must.
func TestReductionCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	type target struct {
		name string
		alg  *algorithms.Algorithm
		ir   bool // carries BBVL IR, so vet can license a reduction
	}
	var targets []target
	for _, n := range bbvlexamples.Names() {
		src, err := bbvlexamples.Source(n)
		if err != nil {
			t.Fatal(err)
		}
		m, err := bbvl.Load(bbvlexamples.Filename(n), src)
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, target{name: n, alg: m.Algorithm(), ir: true})
	}
	for _, id := range []string{"treiber", "ms-queue"} {
		a, err := algorithms.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, target{name: id, alg: a, ir: false})
	}

	type outcome struct {
		lin             bool
		implQ, specQ    int
		lockFree, hasLF bool
		deadFree, hasDF bool
	}
	variants := []struct {
		name string
		cfg  func() core.Config
	}{
		{"workers=1", func() core.Config {
			return core.Config{Threads: 2, Ops: 2, Workers: 1}
		}},
		{"workers=8", func() core.Config {
			return core.Config{Threads: 2, Ops: 2, Workers: 8}
		}},
		{"spill-8MiB", func() core.Config {
			return core.Config{
				Threads: 2, Ops: 2, Workers: 4,
				MemBudget: 8 << 20, SpillDir: t.TempDir(),
				Backend: statestore.Runtime(),
			}
		}},
	}
	acfg := algorithms.Config{Threads: 2, Ops: 2}

	for _, tgt := range targets {
		for _, v := range variants {
			run := func(reduce bool) (outcome, int) {
				cfg := v.cfg()
				if reduce {
					cfg.ReductionProvider = api.ReductionProvider(cfg.Threads, cfg.Ops)
				}
				sess := core.NewSession(cfg)
				impl := tgt.alg.Build(acfg)
				lin, err := sess.CheckLinearizability(impl, tgt.alg.Spec(acfg))
				if err != nil {
					t.Fatalf("%s/%s (reduce=%v): %v", tgt.name, v.name, reduce, err)
				}
				o := outcome{lin: lin.Linearizable, implQ: lin.ImplQuotientStates, specQ: lin.SpecQuotient}
				if tgt.alg.LockBased {
					d, err := sess.CheckDeadlockFree(impl)
					if err != nil {
						t.Fatalf("%s/%s (reduce=%v): %v", tgt.name, v.name, reduce, err)
					}
					o.deadFree, o.hasDF = d.DeadlockFree, true
				} else {
					lf, err := sess.CheckLockFreeAuto(impl)
					if err != nil {
						t.Fatalf("%s/%s (reduce=%v): %v", tgt.name, v.name, reduce, err)
					}
					o.lockFree, o.hasLF = lf.LockFree, true
				}
				return o, lin.ImplStates
			}
			full, fullStates := run(false)
			red, redStates := run(true)
			if full != red {
				t.Errorf("%s/%s: reduction changed a verdict or quotient:\n  full:    %+v\n  reduced: %+v",
					tgt.name, v.name, full, red)
			}
			switch {
			case redStates > fullStates:
				t.Errorf("%s/%s: reduced exploration grew: full=%d reduced=%d",
					tgt.name, v.name, fullStates, redStates)
			case !tgt.ir && redStates != fullStates:
				t.Errorf("%s/%s: hand-coded program (no IR) must be unaffected: full=%d reduced=%d",
					tgt.name, v.name, fullStates, redStates)
			case tgt.ir && tgt.alg.LockBased && redStates >= fullStates:
				t.Errorf("%s/%s: lock-based model pruned nothing: full=%d reduced=%d",
					tgt.name, v.name, fullStates, redStates)
			}
		}
	}
}
