// Progress properties as next-free LTL (the fragment of Section V.B that
// divergence-sensitive branching bisimilarity preserves).
//
// The example model-checks two properties over every maximal execution:
//
//	lock-freedom:   G F (some return ∨ terminated)
//	Deq completes:  G (Deq called → F Deq returns)
//
// on three queues: the lock-free MS queue (both hold), the Herlihy–Wing
// queue (both fail — an empty-queue dequeue rescans forever, shown as a
// counterexample lasso), and — demonstrating the preservation theorem —
// the Fig. 8 abstract queue, which is divergence-sensitive branching
// bisimilar to the MS queue and therefore receives identical verdicts.
package main

import (
	"fmt"
	"log"

	bbv "repro"
	"repro/internal/ltl"
)

func main() {
	check := func(title string, prog *bbv.Program, in bbv.Instance) {
		fmt.Printf("== %s ==\n", title)
		for _, f := range []*ltl.Formula{ltl.LockFreedom(), ltl.MethodCompletes("Deq")} {
			res, err := bbv.CheckLTL(prog, f, in)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-55s %v\n", f.String(), res.Holds)
			if !res.Holds {
				fmt.Printf("  counterexample lasso (prefix %d actions, then forever):\n", len(res.Prefix))
				for _, a := range res.Cycle {
					fmt.Printf("    %q\n", a)
				}
			}
		}
	}

	ms, err := bbv.AlgorithmByID("ms-queue")
	if err != nil {
		log.Fatal(err)
	}
	hw, err := bbv.AlgorithmByID("hw-queue")
	if err != nil {
		log.Fatal(err)
	}

	in := bbv.Instance{Threads: 2, Ops: 2}
	check("MS lock-free queue (2x2)", ms.Build(in.Algorithm()), in)
	check("Fig. 8 abstract queue (2x2, div-bisimilar to the MS queue)", ms.Abstract(in.Algorithm()), in)
	in3 := bbv.Instance{Threads: 3, Ops: 1}
	check("Herlihy-Wing queue (3x1)", hw.Build(in3.Algorithm()), in3)
}
