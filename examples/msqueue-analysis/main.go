// MS queue analysis: the Section III / Fig. 6 story, end to end.
//
// The Michael–Scott queue's dequeue has a non-fixed linearization point:
// the read of head.next at line 20 linearizes an EMPTY dequeue only if
// the later validation at line 21 still sees the same Head. The paper
// shows that ordinary (linear-time) trace equivalence cannot see the
// effect of the racing head-swing CAS at line 28, while the k-trace
// hierarchy — and hence branching bisimilarity — can.
//
// This example (1) explores the queue, (2) reduces it to its branching-
// bisimulation quotient and lists which internal steps survive (exactly
// the effectful lines 8, 20, 21, 28 of the paper's Fig. 5), and
// (3) classifies the surviving τ steps in the ≡ₖ hierarchy, locating a
// step whose endpoints are 1-trace equivalent but 2-trace inequivalent —
// the L28 CAS of Fig. 6.
package main

import (
	"fmt"
	"log"
	"sort"

	bbv "repro"
	"repro/internal/bisim"
	"repro/internal/ktrace"
	"repro/internal/lts"
	"repro/internal/machine"
)

func main() {
	alg, err := bbv.AlgorithmByID("ms-queue")
	if err != nil {
		log.Fatal(err)
	}
	// 2 threads x 4 ops over a single value: large enough to show the
	// quotient structure quickly. (The paper's Fig. 6 instance, 5 ops,
	// exhibits the trace-invisible step; run with -ops 5 via
	// cmd/paper-tables fig6 for that.)
	const threads, ops = 2, 4
	cfg := bbv.Instance{Threads: threads, Ops: ops, Vals: []int32{1}}

	l, err := machine.Explore(alg.Build(cfg.Algorithm()), machine.Options{Threads: threads, Ops: ops})
	if err != nil {
		log.Fatal(err)
	}
	q, _ := bisim.ReduceBranching(l)
	fmt.Printf("MS queue, %d threads x %d ops: %d states, quotient %d (%.0fx smaller)\n",
		threads, ops, l.NumStates(), q.NumStates(), float64(l.NumStates())/float64(q.NumStates()))

	// Which internal steps survive quotienting? Inert steps disappear;
	// what remains are the statements that take effect.
	hist := map[string]int{}
	for s := int32(0); s < int32(q.NumStates()); s++ {
		for _, tr := range q.Succ(s) {
			if lts.IsTau(tr.Action) {
				name := q.LabelName(tr.Label)
				hist[name[len("tN."):]]++ // strip the thread prefix
			}
		}
	}
	var names []string
	for n := range hist {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("internal steps surviving in the quotient (the effectful lines of Fig. 5):")
	for _, n := range names {
		fmt.Printf("  %-4s %d transitions\n", n, hist[n])
	}

	// Classify the surviving steps in the k-trace hierarchy.
	an := ktrace.Analyze(q, 5)
	cls := ktrace.Classify(q, an)
	fmt.Printf("k-trace hierarchy: cap %d, levels:", an.Cap)
	for i, p := range an.Partitions {
		fmt.Printf(" L%d=%d", i+1, p.Num)
	}
	fmt.Println(" classes")
	if cls.Eq1Neq2 != nil {
		fmt.Printf("trace-invisible effect found: τ step %s has 1-trace-equivalent but 2-trace-inequivalent endpoints (Fig. 6)\n",
			q.LabelName(cls.Eq1Neq2.Label))
	} else {
		fmt.Printf("no (≡₁,≢₂) step at %d ops — the paper's Fig. 6 instance needs 5 ops per thread\n", ops)
	}

	// And the verification verdicts themselves.
	lin, err := bbv.CheckLinearizability(alg.Build(cfg.Algorithm()), alg.Spec(cfg.Algorithm()), cfg)
	if err != nil {
		log.Fatal(err)
	}
	lf, err := bbv.CheckLockFreeAbstract(alg.Build(cfg.Algorithm()), alg.Abstract(cfg.Algorithm()), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linearizable: %v (Thm 5.3)   lock-free: %v (Thm 5.8, object ≈div abstract queue: %v)\n",
		lin.Linearizable, lf.LockFree, lf.Bisimilar)
}
