// Bughunt reproduces both bugs the paper found automatically
// (Section VI.F):
//
//  1. The known linearizability bug of the Harris–Michael lock-free list
//     as printed in the first edition of "The Art of Multiprocessor
//     Programming": remove's attemptMark ignores the current mark bit,
//     so two threads can remove the same key and both report success.
//     The counterexample is a non-linearizable history.
//  2. The new lock-freedom bug of the revised Treiber stack with hazard
//     pointers (Fu et al., CONCUR 2010): the reclaiming pop spins until
//     the victim cell is no longer hazard-pointed, so a stalled reader
//     blocks the reclaimer forever. The counterexample is a divergence —
//     an execution ending in a τ-cycle.
//
// Both counterexamples are found with just two threads.
package main

import (
	"fmt"
	"log"

	bbv "repro"
)

func main() {
	in := bbv.Instance{Threads: 2, Ops: 2}

	fmt.Println("== 1. Known bug: HM lock-free list (pre-errata) ==")
	hm, err := bbv.AlgorithmByID("hm-list-buggy")
	if err != nil {
		log.Fatal(err)
	}
	lin, err := bbv.CheckLinearizability(hm.Build(in.Algorithm()), hm.Spec(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	if lin.Linearizable {
		log.Fatal("expected a linearizability violation")
	}
	fmt.Println("non-linearizable history (same key removed twice):")
	fmt.Print(lin.Counterexample.Format())

	fmt.Println()
	fmt.Println("== revised (errata) version of the same list ==")
	fixed, err := bbv.AlgorithmByID("hm-list")
	if err != nil {
		log.Fatal(err)
	}
	lin, err = bbv.CheckLinearizability(fixed.Build(in.Algorithm()), fixed.Spec(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linearizable: %v\n", lin.Linearizable)

	fmt.Println()
	fmt.Println("== 2. New bug: Treiber stack + hazard pointers, revised version ==")
	fu, err := bbv.AlgorithmByID("treiber-hp-fu")
	if err != nil {
		log.Fatal(err)
	}
	lf, err := bbv.CheckLockFree(fu.Build(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	if lf.LockFree {
		log.Fatal("expected a lock-freedom violation")
	}
	fmt.Println("divergence (t1 spins at the reclamation scan H7 while t2 parks a hazard pointer at H2):")
	fmt.Print(lf.Divergence.Format())

	fmt.Println()
	fmt.Println("== the original hazard-pointer scheme (deferred reclamation) ==")
	hp, err := bbv.AlgorithmByID("treiber-hp")
	if err != nil {
		log.Fatal(err)
	}
	lf, err = bbv.CheckLockFree(hp.Build(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lock-free: %v\n", lf.LockFree)
}
