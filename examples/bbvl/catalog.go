// Package bbvlexamples embeds the example BBVL models that live next to
// this file, so the models ship inside every binary that wants them: the
// `bbverify examples` subcommand, the wasm playground's model picker and
// any test that needs a known-good model without touching the
// filesystem. The embedded bytes are the files — a test pins
// byte-identity — which keeps the on-disk examples the single source of
// truth.
package bbvlexamples

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed *.bbvl
var files embed.FS

// Names lists the embedded models in sorted order, by bare name (the
// filename without its .bbvl extension).
func Names() []string {
	ents, err := files.ReadDir(".")
	if err != nil {
		// The embedded tree is baked in at compile time; reading its
		// root cannot fail on a well-formed binary.
		panic("bbvlexamples: " + err.Error())
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, strings.TrimSuffix(e.Name(), ".bbvl"))
	}
	sort.Strings(names)
	return names
}

// Filename returns the canonical embedded filename for name, which may
// be given bare ("treiber") or with its extension ("treiber.bbvl").
func Filename(name string) string {
	return strings.TrimSuffix(name, ".bbvl") + ".bbvl"
}

// Source returns the exact bytes of the named model; name may carry the
// .bbvl extension or not. Unknown names list the catalogue in the
// error.
func Source(name string) ([]byte, error) {
	b, err := files.ReadFile(Filename(name))
	if err != nil {
		return nil, fmt.Errorf("bbvlexamples: unknown model %q (have: %s)",
			name, strings.Join(Names(), ", "))
	}
	return b, nil
}
