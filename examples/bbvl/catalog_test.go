package bbvlexamples

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The embedded catalogue must be byte-identical to the files on disk:
// same set of models, same bytes. This is what lets the playground, the
// examples subcommand and the docs all point at examples/bbvl as the
// single source of truth.
func TestEmbeddedModelsMatchDisk(t *testing.T) {
	ents, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var disk []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".bbvl") {
			disk = append(disk, strings.TrimSuffix(e.Name(), ".bbvl"))
		}
	}
	sort.Strings(disk)
	if len(disk) == 0 {
		t.Fatal("no .bbvl files next to the test; embed set would be empty")
	}

	got := Names()
	if strings.Join(got, ",") != strings.Join(disk, ",") {
		t.Fatalf("embedded names %v != on-disk names %v", got, disk)
	}
	for _, name := range got {
		want, err := os.ReadFile(filepath.Clean(Filename(name)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Source(name)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(want) {
			t.Errorf("embedded %s differs from the file on disk", Filename(name))
		}
		// The extensionful spelling resolves to the same model.
		b2, err := Source(Filename(name))
		if err != nil || string(b2) != string(b) {
			t.Errorf("Source(%q) != Source(%q)", Filename(name), name)
		}
	}
	if _, err := Source("no-such-model"); err == nil {
		t.Error("Source on an unknown name should fail")
	}
}
