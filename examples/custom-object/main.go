// Custom object: model your own concurrent object against its sequential
// specification, without touching the packaged registry.
//
// The object is a tiny "ticket dispenser" with two implementations:
//
//   - a correct one that takes a ticket with an atomic fetch-and-add;
//   - a racy one that reads the counter and writes it back in two steps,
//     so two threads can be handed the same ticket.
//
// The example verifies both against the same atomic specification and
// prints the duplicate-ticket history the checker finds for the racy
// version — demonstrating that defining a new object is just writing its
// statements.
package main

import (
	"fmt"
	"log"

	bbv "repro"
	"repro/internal/machine"
)

// dispenserSpec is the linearizable specification: Take() atomically
// returns the next ticket number.
func dispenserSpec() *bbv.Program {
	return &machine.Program{
		Name:    "dispenser-spec",
		Globals: machine.Schema{Names: []string{"next"}, Kinds: []machine.VarKind{machine.KVal}},
		Methods: []machine.Method{{
			Name: "Take",
			Body: []machine.Stmt{{
				Label: "T",
				Exec: func(c *machine.Ctx) {
					t := c.V(0)
					c.SetV(0, t+1)
					c.Return(t)
				},
			}},
		}},
	}
}

// atomicDispenser implements Take with a CAS retry loop (correct).
func atomicDispenser() *bbv.Program {
	return &machine.Program{
		Name:    "dispenser-cas",
		Globals: machine.Schema{Names: []string{"next"}, Kinds: []machine.VarKind{machine.KVal}},
		NLocals: 1,
		Methods: []machine.Method{{
			Name: "Take",
			Body: []machine.Stmt{
				{Label: "T1", Exec: func(c *machine.Ctx) {
					c.L[0] = c.V(0) // read
					c.Goto(1)
				}},
				{Label: "T2", Exec: func(c *machine.Ctx) {
					if c.CASV(0, c.L[0], c.L[0]+1) { // CAS
						c.Return(c.L[0])
					} else {
						c.Goto(0)
					}
				}},
			},
		}},
	}
}

// racyDispenser reads and writes non-atomically (broken).
func racyDispenser() *bbv.Program {
	return &machine.Program{
		Name:    "dispenser-racy",
		Globals: machine.Schema{Names: []string{"next"}, Kinds: []machine.VarKind{machine.KVal}},
		NLocals: 1,
		Methods: []machine.Method{{
			Name: "Take",
			Body: []machine.Stmt{
				{Label: "T1", Exec: func(c *machine.Ctx) {
					c.L[0] = c.V(0) // read
					c.Goto(1)
				}},
				{Label: "T2", Exec: func(c *machine.Ctx) {
					c.SetV(0, c.L[0]+1) // blind write: lost update
					c.Return(c.L[0])
				}},
			},
		}},
	}
}

func main() {
	in := bbv.Instance{Threads: 2, Ops: 2}
	spec := dispenserSpec()

	for _, impl := range []*bbv.Program{atomicDispenser(), racyDispenser()} {
		lin, err := bbv.CheckLinearizability(impl, spec, in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s linearizable=%v  (%d states, quotient %d)\n",
			impl.Name, lin.Linearizable, lin.ImplStates, lin.ImplQuotientStates)
		if !lin.Linearizable {
			fmt.Println("  duplicate-ticket history:")
			fmt.Print(indent(lin.Counterexample.Format()))
		}
		lf, err := bbv.CheckLockFree(impl, in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s lock-free=%v\n", impl.Name, lf.LockFree)
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if start < i {
				out += "    " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
