// Quickstart: verify the Treiber stack — linearizability by quotient
// trace refinement (Theorem 5.3) and lock-freedom by divergence-sensitive
// branching bisimulation against its own quotient (Theorem 5.9).
package main

import (
	"fmt"
	"log"

	bbv "repro"
)

func main() {
	alg, err := bbv.AlgorithmByID("treiber")
	if err != nil {
		log.Fatal(err)
	}
	in := bbv.Instance{Threads: 2, Ops: 2}

	lin, err := bbv.CheckLinearizability(alg.Build(in.Algorithm()), alg.Spec(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, %d threads x %d ops\n", alg.Display, in.Threads, in.Ops)
	fmt.Printf("  state space:      %d states (spec: %d)\n", lin.ImplStates, lin.SpecStates)
	fmt.Printf("  quotient:         %d states (spec: %d) — a %.0fx reduction\n",
		lin.ImplQuotientStates, lin.SpecQuotient,
		float64(lin.ImplStates)/float64(lin.ImplQuotientStates))
	fmt.Printf("  linearizable:     %v  (%.2fs, no linearization points needed)\n",
		lin.Linearizable, lin.Elapsed.Seconds())

	lf, err := bbv.CheckLockFree(alg.Build(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  lock-free:        %v  (Theorem %s, %.2fs)\n",
		lf.LockFree, lf.Theorem, lf.Elapsed.Seconds())
}
