package bbv_test

import (
	"strings"
	"testing"

	bbv "repro"
)

func TestFacadeRegistry(t *testing.T) {
	if len(bbv.Algorithms()) < 15 {
		t.Fatalf("registry too small: %d", len(bbv.Algorithms()))
	}
	if _, err := bbv.AlgorithmByID("nope"); err == nil {
		t.Fatal("unknown algorithm must error")
	}
	if len(bbv.Exhibits()) != 10 {
		t.Fatalf("exhibits = %d, want 10", len(bbv.Exhibits()))
	}
	if _, err := bbv.ExhibitByName("nope"); err == nil {
		t.Fatal("unknown exhibit must error")
	}
	e, err := bbv.ExhibitByName("table5")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run(bbv.ExhibitOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Render(), "No") {
		t.Fatal("table5 must report the HW violation")
	}
}

func TestFacadeErrorPropagation(t *testing.T) {
	alg, err := bbv.AlgorithmByID("treiber")
	if err != nil {
		t.Fatal(err)
	}
	bad := bbv.Instance{} // zero threads/ops
	cfg := bbv.Instance{Threads: 2, Ops: 2}
	if _, err := bbv.CheckLinearizability(alg.Build(cfg.Algorithm()), alg.Spec(cfg.Algorithm()), bad); err == nil {
		t.Error("CheckLinearizability must reject a zero instance")
	}
	if _, err := bbv.CheckLockFree(alg.Build(cfg.Algorithm()), bad); err == nil {
		t.Error("CheckLockFree must reject a zero instance")
	}
	if _, err := bbv.CheckDeadlockFree(alg.Build(cfg.Algorithm()), bad); err == nil {
		t.Error("CheckDeadlockFree must reject a zero instance")
	}
	if _, err := bbv.CompareWithSpec(alg.Build(cfg.Algorithm()), alg.Spec(cfg.Algorithm()), bad); err == nil {
		t.Error("CompareWithSpec must reject a zero instance")
	}
	tiny := bbv.Instance{Threads: 2, Ops: 2, MaxStates: 3}
	if _, err := bbv.CheckLockFreeAbstract(alg.Build(cfg.Algorithm()), alg.Build(cfg.Algorithm()), tiny); err == nil {
		t.Error("CheckLockFreeAbstract must surface the state budget error")
	}
	if _, _, err := bbv.ExplainSpecMismatch(alg.Build(cfg.Algorithm()), alg.Spec(cfg.Algorithm()), tiny); err == nil {
		t.Error("ExplainSpecMismatch must surface the state budget error")
	}
}
