package bbv_test

import (
	"testing"

	bbv "repro"
	"repro/internal/algorithms"
	"repro/internal/bisim"
	"repro/internal/core"
)

// TestCrossRefinerTableIIVerdicts runs every Table II instance (2
// threads x 2 ops) under both partition refiners and checks that the
// verdicts AND the quotient block counts are identical — the guarantee
// that lets the refiner choice stay out of the service cache key.
func TestCrossRefinerTableIIVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	type outcome struct {
		lin                bool
		implQ, specQ       int
		lockFree, hasLF    bool
		implRounds, states int
	}
	cfg := algorithms.Config{Threads: 2, Ops: 2}
	for _, a := range algorithms.TableII() {
		var got [2]outcome
		for i, ref := range []bisim.Refiner{bisim.RefinerSignature, bisim.RefinerSplitter} {
			sess := core.NewSession(core.Config{Threads: 2, Ops: 2, Refiner: ref})
			impl := a.Build(cfg)
			lin, err := sess.CheckLinearizability(impl, a.Spec(cfg))
			if err != nil {
				t.Fatalf("%s (%v): %v", a.ID, ref, err)
			}
			o := outcome{
				lin:    lin.Linearizable,
				implQ:  lin.ImplQuotientStates,
				specQ:  lin.SpecQuotient,
				states: lin.ImplStates,
			}
			if !a.LockBased {
				lf, err := sess.CheckLockFreeAuto(impl)
				if err != nil {
					t.Fatalf("%s (%v): %v", a.ID, ref, err)
				}
				o.lockFree, o.hasLF = lf.LockFree, true
			}
			got[i] = o
		}
		if got[0] != got[1] {
			t.Errorf("%s: refiners disagree:\n  signature: %+v\n  splitter:  %+v", a.ID, got[0], got[1])
		}
	}
}

// TestCrossRefinerExplainDeterministicAcrossWorkers pins satellite
// determinism: the rendered distinguishing experiment for the same
// inequivalent pair is byte-identical whether the state spaces were
// explored sequentially or with 8 workers.
func TestCrossRefinerExplainDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	alg, err := bbv.AlgorithmByID("hm-list-buggy")
	if err != nil {
		t.Fatal(err)
	}
	formats := make([]string, 0, 2)
	for _, workers := range []int{1, 8} {
		in := bbv.Instance{Threads: 2, Ops: 2, Workers: workers}
		exp, bad, err := bbv.ExplainSpecMismatch(alg.Build(in.Algorithm()), alg.Spec(in.Algorithm()), in)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bad {
			t.Fatalf("workers=%d: hm-list-buggy must mismatch its spec", workers)
		}
		formats = append(formats, exp.Format())
	}
	if formats[0] != formats[1] {
		t.Errorf("experiment differs across worker counts:\n-- workers=1 --\n%s-- workers=8 --\n%s", formats[0], formats[1])
	}
}
