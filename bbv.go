// Package bbv verifies linearizability and lock-freedom of concurrent
// objects with branching bisimulation, reproducing the techniques of
//
//	Xiaoxiao Yang, Gaoang Liu, Joost-Pieter Katoen, Huimin Lin, Hao Wu:
//	"Branching Bisimulation and Concurrent Object Verification", DSN 2018.
//
// The package is a facade over the repository's engine:
//
//   - Model a concurrent object as a machine.Program: methods are
//     sequences of atomic statements over a shared heap; a most general
//     client explores every interleaving, producing a labeled transition
//     system whose only visible actions are method calls and returns.
//   - CheckLinearizability (Theorem 5.3) decides trace refinement between
//     the branching-bisimulation quotients of the object and its
//     single-atomic-block specification — no linearization-point
//     annotations required — and yields a non-linearizable history on
//     failure.
//   - CheckLockFree (Theorem 5.9) decides divergence-sensitive branching
//     bisimilarity between the object and its own quotient, yielding a
//     divergence (τ-lasso) on failure; CheckLockFreeAbstract (Theorem
//     5.8) instead compares against a hand-written coarser abstract
//     program.
//
// Fourteen benchmark algorithms from the paper's Table II ship in the
// registry (Algorithms, AlgorithmByID), and the exhibits (Exhibits) can
// regenerate every table and figure of the paper's evaluation.
//
// A minimal session:
//
//	alg, _ := bbv.AlgorithmByID("ms-queue")
//	cfg := bbv.Instance{Threads: 2, Ops: 2}
//	res, err := bbv.CheckLinearizability(alg.Build(cfg.Algorithm()), alg.Spec(cfg.Algorithm()), cfg)
//	// res.Linearizable == true
package bbv

import (
	"context"

	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/bisim"
	"repro/internal/core"
	"repro/internal/exhibits"
	"repro/internal/ltl"
	"repro/internal/lts"
	"repro/internal/machine"
	"repro/internal/statestore"
)

// Instance bounds one verification run: the number of most-general-client
// threads, the operations each may perform, and an optional state budget.
type Instance struct {
	Threads   int
	Ops       int
	MaxStates int
	// Workers sets the state-space exploration worker count (0 = all
	// cores, 1 = sequential). Results are identical for any value.
	Workers int
	// MemBudget bounds (in bytes) the resident state storage of each
	// exploration; past it, state storage spills to temp files. Zero
	// keeps everything in RAM. Results are identical for any budget.
	MemBudget int64
	// Vals overrides the data-value universe of the packaged algorithms
	// (default {1, 2}).
	Vals []int32
}

// Algorithm converts the instance into the algorithm-builder config.
func (i Instance) Algorithm() algorithms.Config {
	return algorithms.Config{Threads: i.Threads, Ops: i.Ops, Vals: i.Vals}
}

func (i Instance) core() core.Config {
	return core.Config{
		Threads:   i.Threads,
		Ops:       i.Ops,
		MaxStates: i.MaxStates,
		Workers:   i.Workers,
		MemBudget: i.MemBudget,
		// Bit-pack states with vet's interval facts, exactly as the CLI and
		// the bbvd service do, and wire the platform backend so MemBudget
		// can spill and results carry real RSS telemetry.
		LayoutProvider: api.LayoutProvider(i.Threads, i.Ops),
		Backend:        statestore.Runtime(),
	}
}

// CacheKey returns the canonical content hash under which the bbvd
// verification service caches a job of the given kind ("check",
// "explore" or "ktrace") on algorithmID with this instance. Two
// instances that can only differ in wall-clock behaviour — Workers and
// MemBudget — share a key; instances that can differ in outcome
// (Threads, Ops, MaxStates, Vals) do not.
func (i Instance) CacheKey(kind, algorithmID string) string {
	return api.JobSpec{
		Kind:      kind,
		Algorithm: algorithmID,
		Threads:   i.Threads,
		Ops:       i.Ops,
		MaxStates: i.MaxStates,
		Workers:   i.Workers,
		Vals:      i.Vals,
	}.CacheKey()
}

// Program is a concurrent object model; see machine.Program for how to
// define one.
type Program = machine.Program

// Algorithm is a packaged benchmark: implementation, specification and
// (for some) an abstract program, with the paper's expected verdicts.
type Algorithm = algorithms.Algorithm

// LinearizabilityResult reports a Theorem 5.3 check.
type LinearizabilityResult = core.LinearizabilityResult

// LockFreedomResult reports a Theorem 5.8/5.9 check.
type LockFreedomResult = core.LockFreedomResult

// Algorithms returns the packaged Table II benchmarks.
func Algorithms() []*Algorithm { return algorithms.All() }

// AlgorithmByID resolves a packaged benchmark by its short ID
// (e.g. "treiber", "ms-queue", "hm-list-buggy").
func AlgorithmByID(id string) (*Algorithm, error) { return algorithms.ByID(id) }

// CheckLinearizability verifies impl against spec by quotient trace
// refinement (Theorem 5.3).
func CheckLinearizability(impl, spec *Program, in Instance) (*LinearizabilityResult, error) {
	return core.CheckLinearizability(impl, spec, in.core())
}

// CheckLinearizabilityContext is CheckLinearizability with cancellation:
// when ctx is canceled or times out, exploration and refinement stop
// promptly and a typed cancellation error (machine.CanceledError or
// bisim.CanceledError, both unwrapping to the context cause) is
// returned.
func CheckLinearizabilityContext(ctx context.Context, impl, spec *Program, in Instance) (*LinearizabilityResult, error) {
	return core.CheckLinearizabilityContext(ctx, impl, spec, in.core())
}

// CheckLockFree verifies lock-freedom fully automatically by comparing
// the object with its own branching-bisimulation quotient under
// divergence-sensitive branching bisimilarity (Theorem 5.9).
func CheckLockFree(impl *Program, in Instance) (*LockFreedomResult, error) {
	return core.CheckLockFreeAuto(impl, in.core())
}

// CheckLockFreeContext is CheckLockFree with cancellation.
func CheckLockFreeContext(ctx context.Context, impl *Program, in Instance) (*LockFreedomResult, error) {
	return core.CheckLockFreeAutoContext(ctx, impl, in.core())
}

// CheckLockFreeAbstract verifies lock-freedom against a hand-written
// abstract program (Theorem 5.8).
func CheckLockFreeAbstract(impl, abstract *Program, in Instance) (*LockFreedomResult, error) {
	return core.CheckLockFreeAbstract(impl, abstract, in.core())
}

// CheckLockFreeAbstractContext is CheckLockFreeAbstract with
// cancellation.
func CheckLockFreeAbstractContext(ctx context.Context, impl, abstract *Program, in Instance) (*LockFreedomResult, error) {
	return core.CheckLockFreeAbstractContext(ctx, impl, abstract, in.core())
}

// DeadlockResult reports a deadlock-freedom check.
type DeadlockResult = core.DeadlockResult

// CheckDeadlockFree searches the object's state space for reachable
// states in which some client is blocked forever — the sanity property
// for lock-based objects.
func CheckDeadlockFree(impl *Program, in Instance) (*DeadlockResult, error) {
	return core.CheckDeadlockFree(impl, in.core())
}

// CheckDeadlockFreeContext is CheckDeadlockFree with cancellation.
func CheckDeadlockFreeContext(ctx context.Context, impl *Program, in Instance) (*DeadlockResult, error) {
	return core.CheckDeadlockFreeContext(ctx, impl, in.core())
}

// Session is a per-instance artifact store: explored state spaces,
// quotients, τ-cycle analyses and equivalence verdicts are memoized, so
// any combination of checks on the same programs explores and quotients
// each artifact exactly once. Check results and Session.Stats carry
// per-stage instrumentation ([]StageStat).
type Session = core.Session

// StageStat instruments one pipeline stage (name, wall time, input and
// output sizes, refinement rounds, cache hit).
type StageStat = core.StageStat

// NewSession creates an artifact-reuse session for the instance. Reuse
// keys on program identity, so build each program once and pass the same
// pointer to every check:
//
//	s := bbv.NewSession(in)
//	impl := alg.Build(in.Algorithm())
//	lin, _ := s.CheckLinearizability(impl, alg.Spec(in.Algorithm()))
//	lf, _ := s.CheckLockFreeAuto(impl) // reuses impl's LTS and quotient
func NewSession(in Instance) *Session { return core.NewSession(in.core()) }

// Exhibit regenerates one table or figure of the paper.
type Exhibit = exhibits.Exhibit

// ExhibitOptions bounds exhibit computations.
type ExhibitOptions = exhibits.Options

// Exhibits lists every regenerable table and figure in paper order.
func Exhibits() []Exhibit { return exhibits.All() }

// ExhibitByName resolves an exhibit (e.g. "table3", "fig10").
func ExhibitByName(name string) (Exhibit, error) { return exhibits.ByName(name) }

// CheckLTL decides whether every maximal execution of the object
// satisfies a next-free LTL formula (package ltl), the property fragment
// preserved by divergence-sensitive branching bisimilarity (Section V.B
// of the paper). The object is explored under this instance's most
// general clients.
func CheckLTL(impl *Program, f *ltl.Formula, in Instance) (*ltl.Result, error) {
	l, err := core.Explore(impl, in.core(), nil, nil)
	if err != nil {
		return nil, err
	}
	return ltl.Check(l, f)
}

// EquivalenceReport compares an object with its specification under weak
// and branching bisimilarity (one row of the paper's Table VII).
type EquivalenceReport = core.EquivalenceReport

// CompareWithSpec computes the sizes of the object, its specification and
// both branching-bisimulation quotients, and decides Δ ~w Θsp and
// Δ ~br Θsp (on the quotients, which is sound).
func CompareWithSpec(impl, spec *Program, in Instance) (*EquivalenceReport, error) {
	return core.CompareWithSpec(impl, spec, in.core())
}

// CompareWithSpecContext is CompareWithSpec with cancellation.
func CompareWithSpecContext(ctx context.Context, impl, spec *Program, in Instance) (*EquivalenceReport, error) {
	return core.CompareWithSpecContext(ctx, impl, spec, in.core())
}

// Explanation describes why two systems are not branching bisimilar.
type Explanation = bisim.Explanation

// ExplainSpecMismatch diagnoses why an object is not branching bisimilar
// to its specification: the refinement round at which their initial
// states separate and the capabilities only one side has. ok is false
// when the two are in fact bisimilar.
func ExplainSpecMismatch(impl, spec *Program, in Instance) (*Explanation, bool, error) {
	acts := lts.NewAlphabet()
	labels := lts.NewAlphabet()
	implLTS, err := core.Explore(impl, in.core(), acts, labels)
	if err != nil {
		return nil, false, err
	}
	specLTS, err := core.Explore(spec, in.core(), acts, labels)
	if err != nil {
		return nil, false, err
	}
	implQ, _ := bisim.ReduceBranching(implLTS)
	specQ, _ := bisim.ReduceBranching(specLTS)
	return bisim.Explain(implQ, specQ, bisim.KindBranching)
}
