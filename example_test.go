package bbv_test

import (
	"fmt"
	"log"

	bbv "repro"
	"repro/internal/ltl"
)

// Verify a packaged benchmark: the Treiber stack is linearizable and
// lock-free at 2 threads × 2 operations.
func Example() {
	alg, err := bbv.AlgorithmByID("treiber")
	if err != nil {
		log.Fatal(err)
	}
	in := bbv.Instance{Threads: 2, Ops: 2}
	lin, err := bbv.CheckLinearizability(alg.Build(in.Algorithm()), alg.Spec(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	lf, err := bbv.CheckLockFree(alg.Build(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("linearizable:", lin.Linearizable)
	fmt.Println("lock-free:", lf.LockFree)
	// Output:
	// linearizable: true
	// lock-free: true
}

// Reproduce the paper's known bug: the pre-errata Harris–Michael list
// lets two threads remove the same key.
func ExampleCheckLinearizability_bug() {
	alg, err := bbv.AlgorithmByID("hm-list-buggy")
	if err != nil {
		log.Fatal(err)
	}
	in := bbv.Instance{Threads: 2, Ops: 2}
	res, err := bbv.CheckLinearizability(alg.Build(in.Algorithm()), alg.Spec(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("linearizable:", res.Linearizable)
	last := res.Counterexample.Trace[len(res.Counterexample.Trace)-1]
	fmt.Println("offending action:", last)
	// Output:
	// linearizable: false
	// offending action: t2.ret.Remove(true)
}

// Reproduce the paper's new bug: the revised hazard-pointer stack
// diverges, violating lock-freedom.
func ExampleCheckLockFree_divergence() {
	alg, err := bbv.AlgorithmByID("treiber-hp-fu")
	if err != nil {
		log.Fatal(err)
	}
	in := bbv.Instance{Threads: 2, Ops: 2}
	res, err := bbv.CheckLockFree(alg.Build(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lock-free:", res.LockFree)
	fmt.Println("has divergence diagnostic:", res.Divergence != nil)
	// Output:
	// lock-free: false
	// has divergence diagnostic: true
}

// Model-check a next-free LTL progress property: the HW queue's dequeue
// can rescan an empty array forever.
func ExampleCheckLTL() {
	alg, err := bbv.AlgorithmByID("hw-queue")
	if err != nil {
		log.Fatal(err)
	}
	in := bbv.Instance{Threads: 3, Ops: 1}
	res, err := bbv.CheckLTL(alg.Build(in.Algorithm()), ltl.LockFreedom(), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GF(return or terminated) holds:", res.Holds)
	// Output:
	// GF(return or terminated) holds: false
}

// Compare an object with its specification under weak and branching
// bisimilarity (a Table VII row): the simple fixed-LP Treiber stack is
// equivalent to its atomic specification under both notions.
func ExampleCompareWithSpec() {
	alg, err := bbv.AlgorithmByID("treiber")
	if err != nil {
		log.Fatal(err)
	}
	in := bbv.Instance{Threads: 2, Ops: 2}
	rep, err := bbv.CompareWithSpec(alg.Build(in.Algorithm()), alg.Spec(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("weak bisimilar:", rep.WeakBisimilar)
	fmt.Println("branching bisimilar:", rep.BranchBisimilar)
	// Output:
	// weak bisimilar: true
	// branching bisimilar: true
}

// Explain why the MS queue is not branching bisimilar to its atomic
// specification (the non-fixed linearization point of Fig. 7): the
// engine reports the refinement round at which they separate.
func ExampleExplainSpecMismatch() {
	alg, err := bbv.AlgorithmByID("ms-queue")
	if err != nil {
		log.Fatal(err)
	}
	in := bbv.Instance{Threads: 2, Ops: 3, Vals: []int32{1}}
	exp, mismatched, err := bbv.ExplainSpecMismatch(alg.Build(in.Algorithm()), alg.Spec(in.Algorithm()), in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mismatched:", mismatched)
	fmt.Println("separates at a refinement round:", exp.Round > 1)
	// Output:
	// mismatched: true
	// separates at a refinement round: true
}
