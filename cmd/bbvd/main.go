// Command bbvd is the verification daemon: it serves the packaged
// branching-bisimulation checks over HTTP with a bounded job queue, a
// worker pool, a content-addressed result cache, and (with -store) a
// persistent artifact store that survives restarts, so parameter sweeps
// and repeated CI checks hit the cache instead of re-exploring.
//
//	bbvd [-addr :8080] [-workers N] [-queue N] [-cache N] [-cache-bytes 256MiB]
//	     [-job-timeout 5m] [-max-states N]
//	     [-store DIR] [-store-budget 1GiB]
//	bbvd -replay DIR
//
// API (JSON unless noted):
//
//	POST   /v1/jobs        submit {"kind":"check|explore|ktrace","algorithm":"ms-queue","threads":2,"ops":2};
//	                       check jobs may select checks with
//	                       "checks":["linearizability","lockfree","deadlock"]
//	                       (unknown names are a 400 with per-name
//	                       "diagnostics"; the list is part of the cache
//	                       key); instead of "algorithm", a job may inline a
//	                       BBVL model as "model_source" (with an optional
//	                       "model_name" for diagnostics) — parse and type
//	                       errors come back as a 400 with positioned
//	                       "diagnostics"; the source text is part of the
//	                       cache key
//	GET    /v1/jobs/{id}   poll status; "done" carries the result with
//	                       counterexamples and a "stages" array — the
//	                       per-stage instrumentation (explore, quotient,
//	                       tau-scc, equivalence, trace-inclusion, ktrace)
//	                       of the job's artifact session, cache-served
//	                       stages marked "cached"
//	GET    /v1/jobs/{id}/events  stream per-stage progress as server-sent
//	                       events: "stage" events as the session records
//	                       them, "heartbeat" keep-alives, and a final
//	                       "done" event carrying the terminal job view
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/jobs        list retained jobs
//	GET    /v1/algorithms  the algorithm registry
//	GET    /healthz        liveness
//	GET    /metrics        counters (Prometheus text format), including
//	                       per-stage bbvd_stage_runs_total and the
//	                       artifact-store gauges bbvd_artifact_store_bytes,
//	                       bbvd_artifact_evictions_total,
//	                       bbvd_artifact_quarantined_total and
//	                       bbvd_sse_clients_active
//
// With -store DIR every completed result is persisted content-addressed
// under its cache key; a daemon restarted onto the same directory serves
// previously verified jobs as cache hits with byte-identical result
// JSON. -replay DIR re-verifies every stored job against its stored
// verdict and exits non-zero on any drift — the accumulated corpus
// doubles as a regression suite for the verifier.
//
// SIGINT/SIGTERM triggers graceful shutdown: intake stops, running jobs
// drain, completed-but-unpersisted artifacts are flushed to the store,
// and after -drain-timeout stragglers are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/statecodec"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "verification workers (0 = all cores)")
	queue := flag.Int("queue", 64, "bounded job-queue depth")
	cache := flag.Int("cache", 256, "result-cache capacity (LRU entries)")
	cacheBytes := flag.String("cache-bytes", "", "result-cache byte budget, e.g. 256MiB (empty = 256MiB default, \"0\" = entries-only bound)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job timeout (0 = none; jobs may set a shorter timeout_ms)")
	maxStates := flag.Int("max-states", 0, "state-budget cap applied to every job (0 = library default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs before canceling them")
	storeDir := flag.String("store", "", "persistent artifact-store directory (empty = in-memory cache only)")
	storeBudget := flag.String("store-budget", "", "artifact-store on-disk byte budget with LRU eviction, e.g. 1GiB (empty = unlimited)")
	replayDir := flag.String("replay", "", "re-verify every artifact stored under this directory and exit (non-zero on drift)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replayDir != "" {
		if err := replay(ctx, *replayDir); err != nil {
			log.Fatal("bbvd: ", err)
		}
		return
	}

	cfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		DefaultTimeout: *jobTimeout,
		MaxStates:      *maxStates,
		StoreDir:       *storeDir,
		Logf:           log.Printf,
	}
	var err error
	if cfg.CacheBytes, err = parseByteFlag("cache-bytes", *cacheBytes, -1); err != nil {
		log.Fatal("bbvd: ", err)
	}
	if cfg.StoreBudget, err = parseByteFlag("store-budget", *storeBudget, 0); err != nil {
		log.Fatal("bbvd: ", err)
	}
	if err := run(ctx, cfg, *addr, *drainTimeout, nil); err != nil {
		log.Fatal("bbvd: ", err)
	}
}

// parseByteFlag parses a human-readable size flag ("256MiB", "1GB",
// "4096"). Empty keeps the default; an explicit "0" maps to zeroVal so
// flags whose zero means "unbounded" can still express it (the serve
// Config uses 0 for "apply default" and negative for "unbounded").
func parseByteFlag(name, val string, zeroVal int64) (int64, error) {
	if val == "" {
		return 0, nil
	}
	n, err := statecodec.ParseBudget(val)
	if err != nil {
		return 0, fmt.Errorf("-%s: %w", name, err)
	}
	if n == 0 {
		return zeroVal, nil
	}
	return n, nil
}

// replay re-verifies the artifact corpus under dir and reports drift.
func replay(ctx context.Context, dir string) error {
	rep, err := serve.Replay(ctx, dir, log.Printf)
	if err != nil {
		return err
	}
	log.Printf("bbvd: replayed %d artifact(s): %d ok, %d drifted, %d failed",
		rep.Total, rep.Matched, len(rep.Drifted), len(rep.Failed))
	if !rep.OK() {
		return errors.New("replay failed: stored verdicts drifted or artifacts did not replay")
	}
	return nil
}

// run starts the service on addr and blocks until ctx is canceled, then
// shuts down gracefully: HTTP intake first, then the job queue, with
// stragglers canceled after drainTimeout. When ready is non-nil it
// receives the bound listen address once the server is accepting.
func run(ctx context.Context, cfg serve.Config, addr string, drainTimeout time.Duration, ready chan<- string) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	eff := s.Config()
	if st := s.Store(); st != nil {
		budget := "unlimited"
		if eff.StoreBudget > 0 {
			budget = statecodec.FormatBytes(eff.StoreBudget)
		}
		log.Printf("bbvd: artifact store %s (%d artifact(s), %s on disk, budget %s)",
			st.Root(), st.Len(), statecodec.FormatBytes(st.Bytes()), budget)
	}
	log.Printf("bbvd: serving on %s (%d workers, queue %d, cache %d)",
		ln.Addr(), eff.Workers, eff.QueueDepth, eff.CacheSize)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	log.Print("bbvd: shutting down, draining jobs")
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelDrain()
	if err := s.Shutdown(drainCtx); err != nil {
		log.Printf("bbvd: drain timed out, in-flight jobs canceled (%v)", err)
	}
	return nil
}
