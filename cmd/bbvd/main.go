// Command bbvd is the verification daemon: it serves the packaged
// branching-bisimulation checks over HTTP with a bounded job queue, a
// worker pool, and a content-addressed result cache, so parameter sweeps
// and repeated CI checks hit the cache instead of re-exploring.
//
//	bbvd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	     [-job-timeout 5m] [-max-states N]
//
// API (JSON unless noted):
//
//	POST   /v1/jobs        submit {"kind":"check|explore|ktrace","algorithm":"ms-queue","threads":2,"ops":2};
//	                       check jobs may select checks with
//	                       "checks":["linearizability","lockfree","deadlock"]
//	                       (unknown names are a 400 with per-name
//	                       "diagnostics"; the list is part of the cache
//	                       key); instead of "algorithm", a job may inline a
//	                       BBVL model as "model_source" (with an optional
//	                       "model_name" for diagnostics) — parse and type
//	                       errors come back as a 400 with positioned
//	                       "diagnostics"; the source text is part of the
//	                       cache key
//	GET    /v1/jobs/{id}   poll status; "done" carries the result with
//	                       counterexamples and a "stages" array — the
//	                       per-stage instrumentation (explore, quotient,
//	                       tau-scc, equivalence, trace-inclusion, ktrace)
//	                       of the job's artifact session, cache-served
//	                       stages marked "cached"
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/jobs        list retained jobs
//	GET    /v1/algorithms  the algorithm registry
//	GET    /healthz        liveness
//	GET    /metrics        counters (Prometheus text format), including
//	                       per-stage bbvd_stage_runs_total,
//	                       bbvd_stage_cached_total and
//	                       bbvd_stage_wall_seconds_total
//
// SIGINT/SIGTERM triggers graceful shutdown: intake stops, running jobs
// drain, and after -drain-timeout stragglers are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "verification workers (0 = all cores)")
	queue := flag.Int("queue", 64, "bounded job-queue depth")
	cache := flag.Int("cache", 256, "result-cache capacity (LRU entries)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job timeout (0 = none; jobs may set a shorter timeout_ms)")
	maxStates := flag.Int("max-states", 0, "state-budget cap applied to every job (0 = library default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs before canceling them")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		DefaultTimeout: *jobTimeout,
		MaxStates:      *maxStates,
	}
	if err := run(ctx, cfg, *addr, *drainTimeout, nil); err != nil {
		log.Fatal("bbvd: ", err)
	}
}

// run starts the service on addr and blocks until ctx is canceled, then
// shuts down gracefully: HTTP intake first, then the job queue, with
// stragglers canceled after drainTimeout. When ready is non-nil it
// receives the bound listen address once the server is accepting.
func run(ctx context.Context, cfg serve.Config, addr string, drainTimeout time.Duration, ready chan<- string) error {
	s := serve.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	eff := s.Config()
	log.Printf("bbvd: serving on %s (%d workers, queue %d, cache %d)",
		ln.Addr(), eff.Workers, eff.QueueDepth, eff.CacheSize)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	log.Print("bbvd: shutting down, draining jobs")
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelDrain()
	if err := s.Shutdown(drainCtx); err != nil {
		log.Printf("bbvd: drain timed out, in-flight jobs canceled (%v)", err)
	}
	return nil
}
