package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestRunServesAndShutsDown boots the daemon on an ephemeral port,
// verifies liveness over HTTP, and checks that canceling the run
// context shuts it down cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, serve.Config{Workers: 1}, "127.0.0.1:0", 5*time.Second, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
}

// bootDaemon starts run() on an ephemeral port and returns the bound
// address plus a shutdown function that waits for a clean exit.
func bootDaemon(t *testing.T, cfg serve.Config) (addr string, shutdown func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, cfg, "127.0.0.1:0", 10*time.Second, ready)
	}()
	select {
	case addr = <-ready:
	case err := <-errc:
		cancel()
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("server never became ready")
	}
	return addr, func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("shutdown returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("run did not exit after context cancellation")
		}
	}
}

// submitAndAwait posts spec and polls the job to a terminal view.
func submitAndAwait(t *testing.T, addr string, spec map[string]any) map[string]any {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view map[string]any
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	id, _ := view["id"].(string)
	if id == "" {
		t.Fatalf("submission response has no job id: %v", view)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view["status"] {
		case "done":
			return view
		case "failed", "canceled":
			t.Fatalf("job %s ended %v: %v", id, view["status"], view["error"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

// TestRestartReplaySmoke is the end-to-end persistence smoke: two jobs
// verified by one daemon instance are served as cache hits by a second
// instance restarted onto the same store directory, and -replay over
// the accumulated corpus passes.
func TestRestartReplaySmoke(t *testing.T) {
	dir := t.TempDir()
	cfg := serve.Config{Workers: 2, StoreDir: dir}

	addr, shutdown := bootDaemon(t, cfg)
	jobs := []map[string]any{
		{"kind": "check", "algorithm": "treiber", "threads": 2, "ops": 1},
		{"kind": "explore", "algorithm": "treiber", "threads": 2, "ops": 1},
	}
	firstResults := make([]any, len(jobs))
	for i, spec := range jobs {
		firstResults[i] = submitAndAwait(t, addr, spec)["result"]
	}
	shutdown() // flushes any unpersisted artifacts

	addr, shutdown = bootDaemon(t, cfg)
	for i, spec := range jobs {
		view := submitAndAwait(t, addr, spec)
		if cached, _ := view["cached"].(bool); !cached {
			t.Fatalf("restarted daemon did not serve job %d from the store: %v", i, view)
		}
		a, _ := json.Marshal(firstResults[i])
		b, _ := json.Marshal(view["result"])
		if !bytes.Equal(a, b) {
			t.Fatalf("job %d result JSON changed across restart:\nbefore: %s\nafter:  %s", i, a, b)
		}
	}
	shutdown()

	if err := replay(context.Background(), dir); err != nil {
		t.Fatalf("replay over the smoke corpus failed: %v", err)
	}
}

// TestRunBadAddr pins that an unusable listen address fails fast.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), serve.Config{Workers: 1}, "256.256.256.256:0", time.Second, nil)
	if err == nil {
		t.Fatal("bad listen address must error")
	}
}
