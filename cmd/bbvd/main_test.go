package main

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestRunServesAndShutsDown boots the daemon on an ephemeral port,
// verifies liveness over HTTP, and checks that canceling the run
// context shuts it down cleanly.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, serve.Config{Workers: 1}, "127.0.0.1:0", 5*time.Second, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
}

// TestRunBadAddr pins that an unusable listen address fails fast.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), serve.Config{Workers: 1}, "256.256.256.256:0", time.Second, nil)
	if err == nil {
		t.Fatal("bad listen address must error")
	}
}
