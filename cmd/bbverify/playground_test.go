package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	bbvlexamples "repro/examples/bbvl"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/playground"
)

// canonicalizeResult zeroes the wall-clock-dependent telemetry of a
// result — elapsed times, throughput, measured RSS — leaving every
// deterministic field (verdicts, sizes, traces, stage structure, the
// echoed spec) intact. Two runs of the same job must agree byte-for-byte
// on the canonical form, whatever backend ran them.
func canonicalizeResult(res *api.Result) {
	res.ElapsedMS = 0
	for i := range res.Stages {
		res.Stages[i].ElapsedUS = 0
		res.Stages[i].StatesPerSec = 0
		res.Stages[i].PeakRSSBytes = 0
	}
}

// TestWasmCheckPathMatchesCLI is the acceptance gate of the layering
// refactor: the wasm playground's check path (internal/playground,
// build-tag-shared with wasm/wasm.go, running on the pure in-memory
// backend) must produce result JSON byte-identical to the native CLI's
// `check -json` (running on the platform backend) for treiber 2-2 —
// modulo wall-clock telemetry, which canonicalizeResult strips from
// both sides. The storage contract promises backends never change
// results; this pins it across the whole pipeline.
func TestWasmCheckPathMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	model := filepath.Join("..", "..", "examples", "bbvl", "treiber.bbvl")
	cliOut := captureStdout(t, func() error {
		return run([]string{"check", "-json", "-threads", "2", "-ops", "2", "-model", model})
	})

	src, err := bbvlexamples.Source("treiber")
	if err != nil {
		t.Fatal(err)
	}
	pgOut, err := playground.Check(context.Background(), playground.CheckRequest{
		Source:  string(src),
		Name:    model, // the CLI echoes its -model path in the spec
		Threads: 2,
		Ops:     2,
		Refiner: "auto", // the CLI flag default
	})
	if err != nil {
		t.Fatal(err)
	}

	canonical := func(raw string) []byte {
		var res api.Result
		if err := json.Unmarshal([]byte(raw), &res); err != nil {
			t.Fatalf("not an api.Result: %v\n%s", err, raw)
		}
		canonicalizeResult(&res)
		var buf bytes.Buffer
		if err := api.EncodeResult(&buf, &res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cli, pg := canonical(cliOut), canonical(pgOut)
	if !bytes.Equal(cli, pg) {
		t.Errorf("playground check JSON diverged from the CLI's:\n--- cli ---\n%s\n--- playground ---\n%s", cli, pg)
	}

	// The run was real: a verdict came back positive.
	var res api.Result
	if err := json.Unmarshal([]byte(pgOut), &res); err != nil {
		t.Fatal(err)
	}
	if res.Check == nil || !res.Check.Linearizable {
		t.Fatalf("treiber 2x2 must verify linearizable: %+v", res.Check)
	}
	if res.Check.LockFree == nil || !*res.Check.LockFree {
		t.Fatalf("treiber 2x2 must verify lock-free: %+v", res.Check)
	}
}

// TestStorageTableOmitsUnknownRSS pins the telemetry-omission contract:
// when no stage measured a peak RSS (non-Linux platforms, js/wasm, the
// pure backend), the storage table must drop the column instead of
// rendering a bogus "0 B"; when any stage measured one, the column is
// back.
func TestStorageTableOmitsUnknownRSS(t *testing.T) {
	base := core.StageStat{
		Stage: "explore", Target: "treiber", Encoding: "packed",
		BytesPerState: 6.5, StatesPerSec: 100000,
	}
	var unknown bytes.Buffer
	printStorageTable(&unknown, []core.StageStat{base})
	if got := unknown.String(); strings.Contains(got, "peak RSS") || strings.Contains(got, "0 B") {
		t.Errorf("unmeasured RSS must be omitted, not printed:\n%s", got)
	}
	if !strings.Contains(unknown.String(), "packed") {
		t.Errorf("storage table lost its codec column:\n%s", unknown.String())
	}

	measured := base
	measured.PeakRSSBytes = 64 << 20
	var withRSS bytes.Buffer
	printStorageTable(&withRSS, []core.StageStat{measured})
	if got := withRSS.String(); !strings.Contains(got, "peak RSS") || !strings.Contains(got, "64.0 MiB") {
		t.Errorf("measured RSS must be printed:\n%s", got)
	}
}

// TestExamplesCmd pins the embedded-catalogue subcommand: the listing
// names every model and `examples <name>` prints bytes identical to the
// file under examples/bbvl.
func TestExamplesCmd(t *testing.T) {
	listing := captureStdout(t, func() error { return run([]string{"examples"}) })
	for _, name := range bbvlexamples.Names() {
		if !strings.Contains(listing, name) {
			t.Errorf("examples listing misses %q:\n%s", name, listing)
		}
	}

	got := captureStdout(t, func() error { return run([]string{"examples", "treiber"}) })
	want, err := os.ReadFile(filepath.Join("..", "..", "examples", "bbvl", "treiber.bbvl"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Error("examples treiber output differs from examples/bbvl/treiber.bbvl")
	}

	if err := run([]string{"examples", "no-such-model"}); err == nil {
		t.Error("examples with an unknown name must fail")
	}
}
