// Command bbverify verifies the packaged concurrent data structures with
// the branching-bisimulation techniques of the paper.
//
//	bbverify list
//	bbverify check   [-threads N] [-ops N] [-max-states N] <algorithm>
//	bbverify check   -model file.bbvl
//	bbverify check   -spec job.json
//	bbverify explore [-threads N] [-ops N] [-quotient] [-dot F] [-aut F] <algorithm>
//	bbverify ktrace  [-threads N] [-ops N] <algorithm>
//	bbverify compile <file.bbvl>
//	bbverify examples [name]
//	bbverify vet     [-json] [-Werror] [-list] <file.bbvl ...> | -alg id | -all
//
// vet runs the pre-exploration static-analysis pass (internal/vet) on
// its own: findings print one per line at file:line:col, error-severity
// findings (and, under -Werror, warnings) make the command fail. check
// runs the same pass automatically before verifying.
//
// check runs both verification methods: linearizability by quotient
// trace refinement (Theorem 5.3) and lock-freedom by divergence-sensitive
// branching bisimulation against the quotient (Theorem 5.9), printing
// counterexamples on failure. explore generates the state space, reports
// quotient sizes and optionally exports Graphviz/Aldebaran files. ktrace
// classifies the algorithm's τ steps in the ≡ₖ hierarchy (Table I).
//
// Every analysis subcommand accepts -model file.bbvl in place of a
// registry algorithm ID: the BBVL model (see internal/bbvl and
// examples/bbvl) is compiled on the fly and verified against the builtin
// specification it declares. compile prints the compiled machine-level
// form of a model without running anything.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	bbvlexamples "repro/examples/bbvl"
	"repro/internal/algorithms"
	"repro/internal/api"
	"repro/internal/bbvl"
	"repro/internal/bisim"
	"repro/internal/core"
	"repro/internal/ktrace"
	"repro/internal/ltl"
	"repro/internal/lts"
	"repro/internal/machine"
	"repro/internal/statecodec"
	"repro/internal/statestore"
	"repro/internal/vet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bbverify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		return list()
	case "check":
		return check(args[1:])
	case "explore":
		return exploreCmd(args[1:])
	case "ktrace":
		return ktraceCmd(args[1:])
	case "compare":
		return compareCmd(args[1:])
	case "explain":
		return explainCmd(args[1:])
	case "ltl":
		return ltlCmd(args[1:])
	case "sweep":
		return sweepCmd(args[1:])
	case "compile":
		return compileCmd(args[1:])
	case "examples":
		return examplesCmd(args[1:])
	case "vet":
		return vetCmd(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (try: list, check, explore, ktrace, compare, explain, ltl, sweep, compile, examples, vet)", args[0])
	}
}

func usage() {
	fmt.Println(`bbverify — concurrent object verification via branching bisimulation

subcommands:
  list                         list the packaged algorithms
  check   [flags] <algorithm>  verify linearizability (Thm 5.3) and lock-freedom (Thm 5.9);
                               -json emits the bbvd service's result schema;
                               -spec job.json runs a service job spec file instead;
                               -reduction prunes the exploration with the static
                               tau-confluence analysis (identical verdicts,
                               fewer states; BBVL models only)
  explore [flags] <algorithm>  generate the state space and its quotient
  ktrace  [flags] <algorithm>  classify tau steps in the k-trace hierarchy (Table I)
  compare [flags] <algorithm>  compare the object with its specification under
                               weak / branching / divergence-sensitive bisimilarity
                               (Table VII), explaining any inequivalence
  explain [flags] <algorithm>  print a shortest distinguishing experiment between
                               the object and its specification when they are not
                               bisimilar (-kind branching | div-branching); the
                               experiment is replay-verified on the two systems
  ltl     [flags] <algorithm>  model-check next-free LTL progress properties
                               (-formula lockfree | completes:<Method>)
  sweep   [flags] <algorithm>  sweep the operation bound (Table III / Fig. 10
                               style): sizes, quotients, reduction, verdicts
  compile <file.bbvl>          print the compiled machine-level form of a model
  examples [name]              list the embedded example models, or print one
                               (the same catalogue the wasm playground embeds;
                               try: bbverify check -model <(bbverify examples treiber))
  vet     [flags] <file.bbvl>  run the pre-exploration static-analysis pass
                               (unreachable code, dead guards, unused variables,
                               value overflow, spec shape, tau cycles) without
                               exploring anything; -alg id / -all vet registry
                               algorithms, -list prints the analyzer catalogue,
                               -Werror exits non-zero on warnings, -json emits
                               machine-readable findings, -independence prints
                               the independence / tau-confluence report that
                               licenses the -reduction pruning

common flags: -threads N (default 2), -ops N (default 2), -vals 1,2, -max-states N,
              -workers N (exploration workers; 0 = all cores, 1 = sequential —
              results are identical for any value),
              -refiner auto|signature|splitter (branching-bisimulation refinement
              algorithm — partitions and verdicts are identical for any choice),
              -model file.bbvl (verify a BBVL model instead of a registry algorithm)`)
}

func list() error {
	fmt.Printf("%-18s %-34s %-14s %s\n", "ID", "Name", "Linearizable", "Lock-free")
	for _, a := range algorithms.All() {
		lf := fmt.Sprint(a.ExpectLockFree)
		if a.LockBased {
			lf = "n/a (lock-based)"
		}
		fmt.Printf("%-18s %-34s %-14v %s\n", a.ID, a.Display+" "+a.Ref, a.ExpectLinearizable, lf)
	}
	return nil
}

type commonFlags struct {
	fs        *flag.FlagSet
	threads   *int
	ops       *int
	vals      *string
	maxStates *int
	workers   *int
	refiner   *string
	model     *string
	membudget *string
	encoding  *string
	// modelSrc holds the -model file's source after resolve, so check
	// -json can forward it as a model_source job.
	modelSrc []byte
	// memBytes is the parsed -membudget value after resolve.
	memBytes int64
}

func newFlags(name string) *commonFlags {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	return &commonFlags{
		fs:        fs,
		threads:   fs.Int("threads", 2, "number of client threads"),
		ops:       fs.Int("ops", 2, "operations per thread"),
		vals:      fs.String("vals", "", "comma-separated value universe (default algorithm-specific)"),
		maxStates: fs.Int("max-states", 0, "state budget (0 = default)"),
		workers:   fs.Int("workers", 0, "exploration workers (0 = all cores, 1 = sequential)"),
		refiner:   fs.String("refiner", "auto", "branching-bisimulation refiner: auto, signature or splitter — verdicts are identical for any choice"),
		model:     fs.String("model", "", "verify a BBVL model file instead of a registry algorithm"),
		membudget: fs.String("membudget", "", "resident state-storage budget per exploration, e.g. 64MiB or 2GiB; past it, state storage spills to temp files (default: all in RAM) — results are identical for any budget"),
		encoding:  fs.String("encoding", "", "state codec: packed (interval bit-packing, the default) or legacy (one byte per slot) — LTSs are identical for either"),
	}
}

func (c *commonFlags) parse(args []string) (*algorithms.Algorithm, algorithms.Config, core.Config, error) {
	if err := c.fs.Parse(args); err != nil {
		return nil, algorithms.Config{}, core.Config{}, err
	}
	return c.resolve()
}

// resolve interprets the already-parsed flags and positional arguments:
// either one registry algorithm ID, or -model file.bbvl compiled on the
// fly.
func (c *commonFlags) resolve() (*algorithms.Algorithm, algorithms.Config, core.Config, error) {
	var (
		alg *algorithms.Algorithm
		err error
	)
	rest := c.fs.Args()
	if *c.model != "" {
		if len(rest) != 0 {
			return nil, algorithms.Config{}, core.Config{}, fmt.Errorf("-model replaces the algorithm argument; drop %q", rest[0])
		}
		c.modelSrc, err = os.ReadFile(*c.model)
		if err != nil {
			return nil, algorithms.Config{}, core.Config{}, err
		}
		m, err := bbvl.Load(*c.model, c.modelSrc)
		if err != nil {
			return nil, algorithms.Config{}, core.Config{}, err
		}
		alg = m.Algorithm()
	} else {
		if len(rest) != 1 {
			return nil, algorithms.Config{}, core.Config{}, fmt.Errorf("expected exactly one algorithm ID (see `bbverify list`) or -model file.bbvl")
		}
		alg, err = algorithms.ByID(rest[0])
		if err != nil {
			return nil, algorithms.Config{}, core.Config{}, err
		}
	}
	vals, err := parseVals(*c.vals)
	if err != nil {
		return nil, algorithms.Config{}, core.Config{}, err
	}
	ref, err := bisim.ParseRefiner(*c.refiner)
	if err != nil {
		return nil, algorithms.Config{}, core.Config{}, fmt.Errorf("bad -refiner: %w", err)
	}
	if *c.membudget != "" {
		c.memBytes, err = statecodec.ParseBudget(*c.membudget)
		if err != nil {
			return nil, algorithms.Config{}, core.Config{}, fmt.Errorf("bad -membudget: %w", err)
		}
	}
	acfg := algorithms.Config{Threads: *c.threads, Ops: *c.ops, Vals: vals}
	ccfg := core.Config{
		Threads:   *c.threads,
		Ops:       *c.ops,
		MaxStates: *c.maxStates,
		Workers:   *c.workers,
		Refiner:   ref,
		MemBudget: c.memBytes,
		Encoding:  *c.encoding,
		// Narrow packed layouts with vet's interval facts, exactly as the
		// bbvd service does, and wire the platform backend (spill-capable
		// store, real RSS probe) the pure core deliberately lacks.
		LayoutProvider: api.LayoutProvider(*c.threads, *c.ops),
		Backend:        statestore.Runtime(),
	}
	return alg, acfg, ccfg, nil
}

// memBudgetMB converts the parsed -membudget bytes into the JobSpec's
// MiB granularity, rounding up so a budget is never silently loosened
// away (any non-zero budget stays non-zero).
func (c *commonFlags) memBudgetMB() int {
	if c.memBytes <= 0 {
		return 0
	}
	return int((c.memBytes + (1 << 20) - 1) >> 20)
}

// machineOpts builds direct machine.Explore options from a resolved
// core.Config (for the subcommands that explore outside a core.Session),
// carrying the memory budget, codec choice and vet-narrowed layout.
func machineOpts(ccfg core.Config, p *machine.Program) machine.Options {
	opt := machine.Options{
		Threads:   ccfg.Threads,
		Ops:       ccfg.Ops,
		MaxStates: ccfg.MaxStates,
		Workers:   ccfg.Workers,
		MemBudget: ccfg.MemBudget,
		Encoding:  ccfg.Encoding,
		Backend:   ccfg.Backend,
	}
	if p != nil && ccfg.LayoutProvider != nil {
		opt.Layout = ccfg.LayoutProvider(p)
	}
	return opt
}

// parseVals parses a comma-separated -vals flag.
func parseVals(s string) ([]int32, error) {
	if s == "" {
		return nil, nil
	}
	var vals []int32
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -vals: %w", err)
		}
		vals = append(vals, int32(v))
	}
	return vals, nil
}

func check(args []string) error {
	cf := newFlags("check")
	jsonOut := cf.fs.Bool("json", false, "emit the result as JSON (the same schema the bbvd service returns)")
	specFile := cf.fs.String("spec", "", "run an api.JobSpec JSON file (strict decode) and print the result JSON")
	verbose := cf.fs.Bool("v", false, "print a per-stage table (explore/quotient/equivalence...: wall time, sizes, refinement rounds, cache hits)")
	checksFlag := cf.fs.String("checks", "", "comma-separated checks to run against one shared session: linearizability,lockfree,deadlock (default: linearizability plus lockfree or deadlock)")
	reduction := cf.fs.Bool("reduction", false, "enable the static tau-confluence partial-order reduction (BBVL models only; verdicts are identical, the explored state space shrinks)")
	if err := cf.fs.Parse(args); err != nil {
		return err
	}
	if *specFile != "" {
		if cf.fs.NArg() != 0 || *cf.model != "" {
			return fmt.Errorf("-spec runs a self-contained job file; drop the algorithm/-model arguments")
		}
		return runSpecFile(*specFile)
	}
	alg, acfg, ccfg, err := cf.resolve()
	if err != nil {
		return err
	}
	var checks []string
	if *checksFlag != "" {
		for _, c := range strings.Split(*checksFlag, ",") {
			checks = append(checks, strings.TrimSpace(c))
		}
	}
	spec := api.JobSpec{
		Kind:        api.KindCheck,
		Threads:     ccfg.Threads,
		Ops:         ccfg.Ops,
		MaxStates:   ccfg.MaxStates,
		Workers:     ccfg.Workers,
		Refiner:     *cf.refiner,
		Vals:        acfg.Vals,
		Checks:      checks,
		MemBudgetMB: cf.memBudgetMB(),
		Reduction:   *reduction,
	}
	if *reduction {
		ccfg.ReductionProvider = api.ReductionProvider(ccfg.Threads, ccfg.Ops)
	}
	if *cf.model != "" {
		spec.ModelSource = string(cf.modelSrc)
		spec.ModelName = *cf.model
	} else {
		spec.Algorithm = alg.ID
	}

	// The vet pass gates verification the same way the bbvd daemon does:
	// error findings abort before exploration, warnings ride along.
	warnings, err := api.VetSpec(spec)
	if err != nil {
		var ve *api.VetError
		if errors.As(err, &ve) {
			for _, f := range ve.Findings {
				fmt.Fprintln(os.Stderr, f.String())
			}
		}
		return err
	}

	if *jsonOut {
		res, err := api.RunBackend(context.Background(), spec, statestore.Runtime(), nil)
		if err != nil {
			return err
		}
		res.Warnings = warnings
		return api.EncodeResult(os.Stdout, res)
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, w.String())
	}
	fmt.Printf("== %s (%d threads x %d ops) ==\n", alg.Display, ccfg.Threads, ccfg.Ops)

	// One session serves every check, so the object is explored and
	// quotiented once no matter how many properties are verified.
	sess := core.NewSession(ccfg)
	impl := alg.Build(acfg)
	if len(checks) == 0 {
		checks = []string{api.CheckLinearizability}
		if alg.LockBased {
			checks = append(checks, api.CheckDeadlock)
		} else {
			checks = append(checks, api.CheckLockFree)
		}
	}
	for _, c := range checks {
		switch c {
		case api.CheckLinearizability:
			lin, err := sess.CheckLinearizability(impl, alg.Spec(acfg))
			if err != nil {
				return err
			}
			fmt.Printf("linearizability (Thm 5.3): %s   [%d states, quotient %d, spec quotient %d, %.2fs]\n",
				verdict(lin.Linearizable), lin.ImplStates, lin.ImplQuotientStates, lin.SpecQuotient, lin.Elapsed.Seconds())
			if !lin.Linearizable {
				fmt.Println("non-linearizable history:")
				fmt.Print(indent(lin.Counterexample.Format()))
				if lin.Distinguishing != nil {
					fmt.Println("quotient distinguishing experiment:")
					fmt.Print(indent(lin.Distinguishing.Format()))
				}
			}
		case api.CheckDeadlock:
			dl, err := sess.CheckDeadlockFree(impl)
			if err != nil {
				return err
			}
			if alg.LockBased {
				fmt.Printf("lock-freedom: skipped (lock-based algorithm); deadlock-free: %s\n", verdict(dl.DeadlockFree))
			} else {
				fmt.Printf("deadlock-free: %s   [%d states, %.2fs]\n", verdict(dl.DeadlockFree), dl.States, dl.Elapsed.Seconds())
			}
			if !dl.DeadlockFree {
				fmt.Println("deadlock witness:")
				fmt.Print(indent(dl.Witness.Format()))
			}
		case api.CheckLockFree:
			lf, err := sess.CheckLockFreeAuto(impl)
			if err != nil {
				return err
			}
			fmt.Printf("lock-freedom (Thm %s): %s   [%d states, quotient %d, %.2fs]\n",
				lf.Theorem, verdict(lf.LockFree), lf.ImplStates, lf.AbstractStates, lf.Elapsed.Seconds())
			if !lf.LockFree {
				fmt.Println("divergence:")
				fmt.Print(indent(lf.Divergence.Format()))
			}
			if alg.Abstract != nil {
				ab, err := sess.CheckLockFreeAbstract(impl, alg.Abstract(acfg))
				if err != nil {
					return err
				}
				fmt.Printf("lock-freedom (Thm %s): %s   [object =div-bisim= abstract: %v, abstract %d states]\n",
					ab.Theorem, verdict(ab.LockFree), ab.Bisimilar, ab.AbstractStates)
			}
		default:
			return fmt.Errorf("unknown check %q (want %s, %s or %s)", c, api.CheckDeadlock, api.CheckLinearizability, api.CheckLockFree)
		}
	}
	if *verbose {
		printStageTable(sess.Stats())
	}
	return nil
}

// printStageTable renders the session's per-stage instrumentation.
func printStageTable(stats []core.StageStat) {
	sizes := func(st, tr int) string {
		if st == 0 && tr == 0 {
			return "-"
		}
		return fmt.Sprintf("%d/%d", st, tr)
	}
	fmt.Println("\npipeline stages:")
	fmt.Printf("  %-16s %-34s %10s %16s %16s %7s %7s\n",
		"stage", "target", "time(ms)", "in(st/tr)", "out(st/tr)", "rounds", "cached")
	for _, st := range stats {
		rounds := "-"
		if st.Rounds > 0 {
			rounds = fmt.Sprint(st.Rounds)
		}
		cached := ""
		if st.Cached {
			cached = "yes"
		}
		fmt.Printf("  %-16s %-34s %10.2f %16s %16s %7s %7s\n",
			st.Stage, st.Target, float64(st.Elapsed.Microseconds())/1e3,
			sizes(st.StatesIn, st.TransitionsIn), sizes(st.StatesOut, st.TransitionsOut),
			rounds, cached)
	}
	printStorageTable(os.Stdout, stats)
}

// printStorageTable renders the explore stages' state-storage telemetry
// (encoding, bytes per state, throughput, spilling, peak RSS), skipped
// entirely when no stage carries any. The peak-RSS column only appears
// when some stage actually measured one: a zero reading means the
// platform probe is unavailable (non-Linux, js/wasm, pure backend), and
// printing "0 B" would misreport a measurement that never happened.
func printStorageTable(w io.Writer, stats []core.StageStat) {
	any, anyRSS := false, false
	for _, st := range stats {
		if st.Encoding != "" {
			any = true
		}
		if st.PeakRSSBytes > 0 {
			anyRSS = true
		}
	}
	if !any {
		return
	}
	fmt.Fprintln(w, "\nstate storage:")
	fmt.Fprintf(w, "  %-34s %8s %8s %12s %6s", "target", "codec", "B/state", "states/s", "spill")
	if anyRSS {
		fmt.Fprintf(w, " %12s", "peak RSS")
	}
	fmt.Fprintln(w)
	for _, st := range stats {
		if st.Encoding == "" {
			continue
		}
		spill := "-"
		if st.SpillFiles > 0 {
			spill = fmt.Sprint(st.SpillFiles)
		}
		fmt.Fprintf(w, "  %-34s %8s %8.2f %12.0f %6s",
			st.Target, st.Encoding, st.BytesPerState, st.StatesPerSec, spill)
		if anyRSS {
			fmt.Fprintf(w, " %12s", statecodec.FormatBytes(st.PeakRSSBytes))
		}
		fmt.Fprintln(w)
	}
}

func exploreCmd(args []string) error {
	cf := newFlags("explore")
	dotFile := cf.fs.String("dot", "", "write the quotient in Graphviz format")
	autFile := cf.fs.String("aut", "", "write the full LTS in Aldebaran (.aut) format")
	alg, acfg, ccfg, err := cf.parse(args)
	if err != nil {
		return err
	}
	prog := alg.Build(acfg)
	l, info, err := machine.ExploreWithInfo(prog, machineOpts(ccfg, prog))
	if err != nil {
		return err
	}
	q, p, err := bisim.ReduceBranchingWithRefiner(context.Background(), l, ccfg.Refiner)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%d threads x %d ops)\n", alg.Display, ccfg.Threads, ccfg.Ops)
	fmt.Printf("states:       %d\n", l.NumStates())
	fmt.Printf("transitions:  %d (%d tau)\n", l.NumTransitions(), l.CountTau())
	fmt.Printf("memory:       %s codec, %.2f B/state, %.0f states/s",
		info.Stats.Encoding, info.Stats.BytesPerState(), info.Stats.StatesPerSec())
	if rss := info.Stats.PeakRSSBytes; rss > 0 {
		fmt.Printf(", peak RSS %s", statecodec.FormatBytes(rss))
	}
	if info.Stats.SpillFiles > 0 {
		fmt.Printf(", spilled to %d temp files", info.Stats.SpillFiles)
	}
	fmt.Println()
	fmt.Printf("quotient:     %d states, %d transitions (reduction %.1fx)\n",
		q.NumStates(), q.NumTransitions(), float64(l.NumStates())/float64(q.NumStates()))
	fmt.Printf("blocks:       %d\n", p.Num)
	if _, cyc := lts.HasTauCycle(l); cyc {
		fmt.Println("divergence:   the system has a tau cycle (not lock-free)")
	} else {
		fmt.Println("divergence:   none (lock-free)")
	}
	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := lts.WriteDOT(f, q, alg.ID+"-quotient"); err != nil {
			return err
		}
		fmt.Printf("wrote quotient DOT to %s\n", *dotFile)
	}
	if *autFile != "" {
		f, err := os.Create(*autFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := lts.WriteAUT(f, l); err != nil {
			return err
		}
		fmt.Printf("wrote LTS AUT to %s\n", *autFile)
	}
	return nil
}

func ktraceCmd(args []string) error {
	cf := newFlags("ktrace")
	maxK := cf.fs.Int("k", 5, "maximum hierarchy level")
	alg, acfg, ccfg, err := cf.parse(args)
	if err != nil {
		return err
	}
	prog := alg.Build(acfg)
	l, err := machine.Explore(prog, machineOpts(ccfg, prog))
	if err != nil {
		return err
	}
	q, _, err := bisim.ReduceBranchingWithRefiner(context.Background(), l, ccfg.Refiner)
	if err != nil {
		return err
	}
	an := ktrace.Analyze(q, *maxK)
	cls := ktrace.Classify(q, an)
	fmt.Printf("%s (%d threads x %d ops): %d states, quotient %d\n",
		alg.Display, ccfg.Threads, ccfg.Ops, l.NumStates(), q.NumStates())
	fmt.Printf("k-trace hierarchy cap: %d (converged: %v)\n", an.Cap, an.Converged)
	for i, p := range an.Partitions {
		fmt.Printf("  level %d: %d classes\n", i+1, p.Num)
	}
	if cls.Neq1 != nil {
		fmt.Printf("tau step with endpoints neq-1: %s\n", q.LabelName(cls.Neq1.Label))
	}
	if cls.Eq1Neq2 != nil {
		fmt.Printf("tau step with endpoints eq-1 but neq-2: %s (trace-invisible effect, cf. Fig. 6)\n",
			q.LabelName(cls.Eq1Neq2.Label))
	} else {
		fmt.Println("no (eq-1, neq-2) tau step at this instance size")
	}
	return nil
}

func compareCmd(args []string) error {
	cf := newFlags("compare")
	alg, acfg, ccfg, err := cf.parse(args)
	if err != nil {
		return err
	}
	acts := lts.NewAlphabet()
	labels := lts.NewAlphabet()
	implProg, specProg := alg.Build(acfg), alg.Spec(acfg)
	opts := machineOpts(ccfg, implProg)
	opts.Acts, opts.Labels = acts, labels
	impl, err := machine.Explore(implProg, opts)
	if err != nil {
		return err
	}
	specOpts := machineOpts(ccfg, specProg)
	specOpts.Acts, specOpts.Labels = acts, labels
	specLTS, err := machine.Explore(specProg, specOpts)
	if err != nil {
		return err
	}
	implQ, _, err := bisim.ReduceBranchingWithRefiner(context.Background(), impl, ccfg.Refiner)
	if err != nil {
		return err
	}
	specQ, _, err := bisim.ReduceBranchingWithRefiner(context.Background(), specLTS, ccfg.Refiner)
	if err != nil {
		return err
	}
	fmt.Printf("== %s vs specification (%d threads x %d ops) ==\n", alg.Display, ccfg.Threads, ccfg.Ops)
	fmt.Printf("object: %d states (quotient %d)   spec: %d states (quotient %d)\n",
		impl.NumStates(), implQ.NumStates(), specLTS.NumStates(), specQ.NumStates())
	// All notions are decided on the quotients (sound: every system is
	// branching bisimilar to its quotient and ~br refines the others);
	// only the divergence-sensitive notions must use the full systems,
	// since quotienting erases divergence.
	for _, k := range []bisim.Kind{bisim.KindWeak, bisim.KindDivWeak, bisim.KindBranching, bisim.KindDivBranching} {
		var eq bool
		if k == bisim.KindDivWeak || k == bisim.KindDivBranching {
			eq, err = bisim.Equivalent(impl, specLTS, k)
		} else {
			eq, err = bisim.Equivalent(implQ, specQ, k)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%-35s %v\n", k.String()+" bisimilar:", eq)
	}
	exp, bad, err := bisim.Explain(implQ, specQ, bisim.KindBranching)
	if err != nil {
		return fmt.Errorf("explaining the quotient difference: %w", err)
	}
	if bad {
		fmt.Println()
		fmt.Print(exp.Format())
	}
	return nil
}

// explainCmd prints a shortest distinguishing experiment between an
// object and its specification, or reports bisimilarity. The experiment
// is extracted from the splitting tree of the refinement, mapped back to
// states of the two explored systems, and replay-verified before
// printing — a failed replay is an engine bug and aborts the command.
func explainCmd(args []string) error {
	cf := newFlags("explain")
	kindFlag := cf.fs.String("kind", "branching", "bisimulation notion to explain: branching or div-branching")
	alg, acfg, ccfg, err := cf.parse(args)
	if err != nil {
		return err
	}
	var kind bisim.Kind
	switch *kindFlag {
	case "branching":
		kind = bisim.KindBranching
	case "div-branching":
		kind = bisim.KindDivBranching
	default:
		return fmt.Errorf("unknown -kind %q (want branching or div-branching)", *kindFlag)
	}
	acts := lts.NewAlphabet()
	labels := lts.NewAlphabet()
	implProg, specProg := alg.Build(acfg), alg.Spec(acfg)
	opts := machineOpts(ccfg, implProg)
	opts.Acts, opts.Labels = acts, labels
	impl, err := machine.Explore(implProg, opts)
	if err != nil {
		return err
	}
	specOpts := machineOpts(ccfg, specProg)
	specOpts.Acts, specOpts.Labels = acts, labels
	specLTS, err := machine.Explore(specProg, specOpts)
	if err != nil {
		return err
	}
	fmt.Printf("== %s vs specification (%d threads x %d ops, %s) ==\n", alg.Display, ccfg.Threads, ccfg.Ops, kind)
	fmt.Printf("object: %d states   spec: %d states\n", impl.NumStates(), specLTS.NumStates())
	exp, bad, err := bisim.Explain(impl, specLTS, kind)
	if err != nil {
		return err
	}
	if !bad {
		fmt.Printf("the systems are %s bisimilar; there is no distinguishing experiment\n", kind)
		return nil
	}
	if err := exp.Verify(impl, specLTS); err != nil {
		return fmt.Errorf("internal error: extracted experiment fails replay: %w", err)
	}
	fmt.Println()
	fmt.Print(exp.Format())
	fmt.Println("experiment verified by replay on both systems")
	return nil
}

func ltlCmd(args []string) error {
	cf := newFlags("ltl")
	formula := cf.fs.String("formula", "lockfree", "lockfree, or completes:<Method>")
	alg, acfg, ccfg, err := cf.parse(args)
	if err != nil {
		return err
	}
	var f *ltl.Formula
	switch {
	case *formula == "lockfree":
		f = ltl.LockFreedom()
	case strings.HasPrefix(*formula, "completes:"):
		f = ltl.MethodCompletes(strings.TrimPrefix(*formula, "completes:"))
	default:
		return fmt.Errorf("unknown formula %q (use lockfree or completes:<Method>)", *formula)
	}
	prog := alg.Build(acfg)
	l, err := machine.Explore(prog, machineOpts(ccfg, prog))
	if err != nil {
		return err
	}
	res, err := ltl.Check(l, f)
	if err != nil {
		return err
	}
	fmt.Printf("== %s (%d threads x %d ops) ==\n", alg.Display, ccfg.Threads, ccfg.Ops)
	fmt.Printf("formula: %s\n", f)
	fmt.Printf("holds on all maximal executions: %v   [%d states, product %d]\n",
		res.Holds, l.NumStates(), res.ProductStates)
	if !res.Holds {
		fmt.Println("counterexample lasso:")
		for _, a := range res.Prefix {
			fmt.Printf("  %q\n", a)
		}
		fmt.Println("  -- cycle repeats forever --")
		for _, a := range res.Cycle {
			fmt.Printf("  %q\n", a)
		}
	}
	return nil
}

func sweepCmd(args []string) error {
	cf := newFlags("sweep")
	opsMax := cf.fs.Int("ops-max", 5, "largest operations-per-thread bound")
	alg, acfg, ccfg, err := cf.parse(args)
	if err != nil {
		return err
	}
	fmt.Printf("== %s sweep: %d threads, 1..%d ops ==\n", alg.Display, ccfg.Threads, *opsMax)
	fmt.Printf("%-5s %-10s %-10s %-10s %-10s %s\n", "#Op", "states", "quotient", "reduction", "lock-free", "time(s)")
	for ops := 1; ops <= *opsMax; ops++ {
		a := acfg
		a.Ops = ops
		start := time.Now()
		prog := alg.Build(a)
		sweepCfg := ccfg
		sweepCfg.Ops = ops
		// The layout must match this iteration's ops bound, not the base
		// flag value.
		sweepCfg.LayoutProvider = api.LayoutProvider(ccfg.Threads, ops)
		l, err := machine.Explore(prog, machineOpts(sweepCfg, prog))
		if err != nil {
			var lim *machine.StateLimitError
			if errors.As(err, &lim) {
				fmt.Printf("%-5d (exceeds the state budget of %d)\n", ops, lim.Limit)
				return nil
			}
			return err
		}
		q, _, err := bisim.ReduceBranchingWithRefiner(context.Background(), l, ccfg.Refiner)
		if err != nil {
			return err
		}
		lf := "-"
		if !alg.LockBased {
			if _, cyc := lts.HasTauCycle(l); cyc {
				lf = "No"
			} else {
				lf = "Yes"
			}
		}
		fmt.Printf("%-5d %-10d %-10d %-10.1f %-10s %.2f\n",
			ops, l.NumStates(), q.NumStates(),
			float64(l.NumStates())/float64(q.NumStates()), lf, time.Since(start).Seconds())
	}
	return nil
}

// runSpecFile executes one service job spec from disk — the same strict
// decoding and runner the bbvd daemon uses, so a job file debugs
// identically offline.
func runSpecFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spec, err := api.DecodeJobSpec(f)
	if err != nil {
		return err
	}
	warnings, err := api.VetSpec(spec)
	if err != nil {
		var ve *api.VetError
		if errors.As(err, &ve) {
			for _, f := range ve.Findings {
				fmt.Fprintln(os.Stderr, f.String())
			}
		}
		return err
	}
	res, err := api.RunBackend(context.Background(), spec, statestore.Runtime(), nil)
	if err != nil {
		return err
	}
	res.Warnings = warnings
	return api.EncodeResult(os.Stdout, res)
}

// compileCmd loads a BBVL model and prints its compiled machine-level
// form: the schema, the node-field layout, the local register slots and
// every resolved method body.
func compileCmd(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one model file (bbverify compile file.bbvl)")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	m, err := bbvl.Load(fs.Arg(0), src)
	if err != nil {
		return err
	}
	fmt.Print(m.Dump())
	return nil
}

// examplesCmd lists or prints the embedded example models. The bytes
// come from the same go:embed catalogue the wasm playground ships
// (repro/examples/bbvl), which a test pins byte-identical to the files
// under examples/bbvl.
func examplesCmd(args []string) error {
	fs := flag.NewFlagSet("examples", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch fs.NArg() {
	case 0:
		for _, name := range bbvlexamples.Names() {
			src, err := bbvlexamples.Source(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %4d lines\n", name, strings.Count(string(src), "\n"))
		}
		return nil
	case 1:
		src, err := bbvlexamples.Source(fs.Arg(0))
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(src)
		return err
	default:
		return fmt.Errorf("expected at most one model name (bbverify examples [name])")
	}
}

// vetCmd runs the pre-exploration static-analysis pass on its own:
// over BBVL model files (positional arguments) or registry algorithms
// (-alg id, -all), without exploring any state space. Findings print
// one per line in file:line:col form; the command fails when any
// finding has error severity, or on any finding at all under -Werror.
func vetCmd(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	werror := fs.Bool("Werror", false, "treat warnings as errors (non-zero exit on any finding)")
	listOnly := fs.Bool("list", false, "print the analyzer catalogue and exit")
	threads := fs.Int("threads", 2, "number of client threads the analysis assumes")
	ops := fs.Int("ops", 2, "operations per thread the analysis assumes")
	valsFlag := fs.String("vals", "", "comma-separated value universe (default algorithm-specific)")
	algID := fs.String("alg", "", "vet a registry algorithm instead of model files")
	all := fs.Bool("all", false, "vet every registry algorithm")
	indep := fs.Bool("independence", false, "print the independence / tau-confluence analysis report instead of findings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listOnly {
		infos := api.ListAnalyzers()
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(infos)
		}
		for _, in := range infos {
			fmt.Printf("%-12s %-8s %s\n", in.ID, in.Severity, in.Description)
		}
		return nil
	}
	vals, err := parseVals(*valsFlag)
	if err != nil {
		return err
	}

	var specs []api.JobSpec
	base := api.JobSpec{Kind: api.KindCheck, Threads: *threads, Ops: *ops, Vals: vals}
	switch {
	case *all:
		if *algID != "" || fs.NArg() != 0 {
			return fmt.Errorf("-all vets the whole registry; drop the other targets")
		}
		for _, a := range algorithms.All() {
			s := base
			s.Algorithm = a.ID
			specs = append(specs, s)
		}
	case *algID != "":
		if fs.NArg() != 0 {
			return fmt.Errorf("-alg replaces the model file arguments; drop %q", fs.Arg(0))
		}
		s := base
		s.Algorithm = *algID
		specs = append(specs, s)
	default:
		if fs.NArg() == 0 {
			return fmt.Errorf("expected model files to vet (bbverify vet file.bbvl...), -alg id, or -all")
		}
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			s := base
			s.ModelSource = string(src)
			s.ModelName = path
			specs = append(specs, s)
		}
	}

	if *indep {
		return vetIndependence(specs, *jsonOut)
	}

	var findings []api.VetFinding
	hasErrors := false
	for _, spec := range specs {
		fs, err := api.VetSpec(spec)
		if err != nil {
			var ve *api.VetError
			if !errors.As(err, &ve) {
				return err // the program does not even load: parse/type error
			}
			hasErrors = true
		}
		findings = append(findings, fs...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	switch {
	case hasErrors:
		return fmt.Errorf("vet failed")
	case *werror && len(findings) > 0:
		return fmt.Errorf("vet found warnings (-Werror)")
	}
	return nil
}

// vetIndependence prints the independence / τ-confluence report for
// each target: the statement footprints, the verified spin locks, and
// the confluent (reduction-licensed) statement set. Programs without IR
// (hand-coded registry encodings) report that nothing is licensed.
func vetIndependence(specs []api.JobSpec, jsonOut bool) error {
	type entry struct {
		Target   string                 `json:"target"`
		Artifact *vet.ReductionArtifact `json:"artifact"` // nil: no IR, nothing licensed
	}
	var entries []entry
	for _, spec := range specs {
		target := spec.Algorithm
		if target == "" {
			target = spec.ModelName
		}
		art, err := api.IndependenceReport(spec)
		if err != nil {
			return err
		}
		entries = append(entries, entry{Target: target, Artifact: art})
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(entries)
	}
	for i, e := range entries {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s ==\n", e.Target)
		if e.Artifact == nil {
			fmt.Println("no IR (hand-coded program); no reduction licensed")
			continue
		}
		fmt.Print(e.Artifact.Format())
	}
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "OK"
	}
	return "VIOLATED"
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ") + "\n"
}
