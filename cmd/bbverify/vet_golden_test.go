package main

// Golden test for `bbverify vet -json`: the wire output over the seeded
// defect fixtures is pinned byte for byte. The independence /
// τ-confluence analysis lives in the same vet package as the finding
// analyzers; this test proves it never perturbs the finding catalogue,
// ordering, positions or encoding of the default vet pass — reduction
// reporting is opt-in via -independence and must stay out of this
// output entirely.
//
// Regenerate with: BBV_UPDATE_GOLDEN=1 go test ./cmd/bbverify -run TestVetJSONGolden

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

func TestVetJSONGolden(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "vet", "testdata")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".bbvl" {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatal("no .bbvl fixtures found")
	}

	// The fixture set includes error-severity findings (noreturn.bbvl),
	// so the command exits with "vet failed" after printing the JSON —
	// that error is part of the pinned behavior, not a test failure.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(append([]string{"vet", "-json"}, paths...))
	w.Close()
	os.Stdout = old
	var raw []byte
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Read(buf)
		raw = append(raw, buf[:n]...)
		if err != nil {
			break
		}
	}
	if runErr == nil || runErr.Error() != "vet failed" {
		t.Fatalf("vet over the fixtures must fail with %q (noreturn.bbvl has an error finding), got %v", "vet failed", runErr)
	}

	golden := filepath.Join("testdata", "vet_fixtures.golden.json")
	if os.Getenv("BBV_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(raw))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with BBV_UPDATE_GOLDEN=1)", err)
	}
	if string(raw) != string(want) {
		t.Errorf("vet -json output drifted from %s (regenerate with BBV_UPDATE_GOLDEN=1 if the change is intended)\ngot %d bytes, want %d bytes\n--- got ---\n%s",
			golden, len(raw), len(want), raw)
	}
}
