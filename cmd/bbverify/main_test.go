package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/api"
)

func TestRunUsageAndList(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("no-arg usage: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help: %v", err)
	}
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand must error")
	}
}

func TestRunCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	for _, args := range [][]string{
		{"check", "-threads", "2", "-ops", "1", "treiber"},
		{"check", "-threads", "2", "-ops", "1", "-vals", "1", "ms-queue"},
		{"check", "-threads", "2", "-ops", "1", "lazy-list"},
		{"check", "-threads", "3", "-ops", "1", "hw-queue"},
		{"check", "-threads", "2", "-ops", "2", "hm-list-buggy"},
	} {
		if err := run(args); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
	if err := run([]string{"check", "unknown-alg"}); err == nil {
		t.Fatal("unknown algorithm must error")
	}
	if err := run([]string{"check"}); err == nil {
		t.Fatal("missing algorithm must error")
	}
	if err := run([]string{"check", "-vals", "x", "treiber"}); err == nil {
		t.Fatal("bad -vals must error")
	}
	if err := run([]string{"check", "-threads", "2", "-ops", "2", "-max-states", "5", "treiber"}); err == nil {
		t.Fatal("tiny state budget must error")
	}
}

func TestRunExploreAndKtrace(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	dir := t.TempDir()
	dot := filepath.Join(dir, "q.dot")
	aut := filepath.Join(dir, "l.aut")
	if err := run([]string{"explore", "-threads", "2", "-ops", "1", "-dot", dot, "-aut", aut, "treiber"}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{dot, aut} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", f)
		}
	}
	if !strings.Contains(readFile(t, dot), "digraph") {
		t.Error("dot output malformed")
	}
	if !strings.HasPrefix(readFile(t, aut), "des (") {
		t.Error("aut output malformed")
	}
	if err := run([]string{"ktrace", "-threads", "3", "-ops", "1", "hw-queue"}); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	if err := run([]string{"compare", "-threads", "2", "-ops", "1", "treiber"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compare", "-threads", "2", "-ops", "2", "-vals", "1", "ms-queue"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compare"}); err == nil {
		t.Fatal("missing algorithm must error")
	}
}

func TestRunLTL(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	if err := run([]string{"ltl", "-threads", "3", "-ops", "1", "hw-queue"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"ltl", "-formula", "completes:Pop", "-threads", "2", "-ops", "1", "treiber"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"ltl", "-formula", "bogus", "treiber"}); err == nil {
		t.Fatal("bad formula must error")
	}
}

func TestRunSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	if err := run([]string{"sweep", "-threads", "2", "-ops-max", "2", "-vals", "1", "ms-queue"}); err != nil {
		t.Fatal(err)
	}
	// A tiny budget reports the cap instead of erroring.
	if err := run([]string{"sweep", "-threads", "2", "-ops-max", "3", "-max-states", "50", "treiber"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunCheckJSON pins the -json output: it must be the bbvd service's
// result schema (api.Result), machine-parseable from stdout.
func TestRunCheckJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"check", "-json", "-threads", "2", "-ops", "1", "treiber"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	var res api.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("check -json output is not an api.Result: %v\n%s", err, raw)
	}
	if res.Spec.Kind != api.KindCheck || res.Spec.Algorithm != "treiber" {
		t.Fatalf("result echoes the wrong spec: %+v", res.Spec)
	}
	if res.Check == nil || !res.Check.Linearizable {
		t.Fatalf("treiber 2x1 must report linearizable: %+v", res.Check)
	}
	if res.Check.LockFree == nil || !*res.Check.LockFree {
		t.Fatalf("treiber 2x1 must report lock-free: %+v", res.Check)
	}
	if !strings.Contains(string(raw), `"linearizable"`) {
		t.Fatal("JSON field names must match the service wire format")
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fnErr := fn()
	w.Close()
	os.Stdout = old
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if fnErr != nil {
		t.Fatalf("%v\noutput:\n%s", fnErr, raw)
	}
	return string(raw)
}

// TestRunCheckModel verifies a BBVL model file end to end through the
// CLI, in both the human and the -json output modes.
func TestRunCheckModel(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	model := filepath.Join("..", "..", "examples", "bbvl", "treiber.bbvl")
	out := captureStdout(t, func() error {
		return run([]string{"check", "-threads", "2", "-ops", "1", "-model", model})
	})
	if !strings.Contains(out, "treiber (BBVL model)") || !strings.Contains(out, "OK") {
		t.Errorf("unexpected check -model output:\n%s", out)
	}

	raw := captureStdout(t, func() error {
		return run([]string{"check", "-json", "-threads", "2", "-ops", "1", "-model", model})
	})
	var res api.Result
	if err := json.Unmarshal([]byte(raw), &res); err != nil {
		t.Fatalf("check -json -model output is not an api.Result: %v\n%s", err, raw)
	}
	if res.Spec.ModelSource == "" || res.Spec.ModelName != model {
		t.Errorf("result spec does not carry the model: %+v", res.Spec)
	}
	if res.Check == nil || !res.Check.Linearizable {
		t.Errorf("treiber model 2x1 must report linearizable: %+v", res.Check)
	}

	// -model plus a positional algorithm is ambiguous.
	if err := run([]string{"check", "-model", model, "treiber"}); err == nil {
		t.Error("-model with positional algorithm must error")
	}
	// A missing model file is a plain file error.
	if err := run([]string{"check", "-model", filepath.Join(t.TempDir(), "nope.bbvl")}); err == nil {
		t.Error("missing model file must error")
	}
	// A model with a type error reports a positioned diagnostic.
	bad := filepath.Join(t.TempDir(), "bad.bbvl")
	if err := os.WriteFile(bad, []byte("model bad\nglobals { G: val }\nspec stack\nmethod Push(v: vals) { P1: goto NOPE }\nmethod Pop() { P2: return empty }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"check", "-model", bad})
	if err == nil || !strings.Contains(err.Error(), bad+":4") {
		t.Errorf("bad model error = %v, want positioned diagnostic", err)
	}
}

// TestRunCompile pins the compile subcommand's machine-level dump.
func TestRunCompile(t *testing.T) {
	model := filepath.Join("..", "..", "examples", "bbvl", "msqueue.bbvl")
	out := captureStdout(t, func() error {
		return run([]string{"compile", model})
	})
	for _, want := range []string{"model ms-queue", "spec queue", "method Enq", "method Deq", "abstract"} {
		if !strings.Contains(out, want) {
			t.Errorf("compile output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"compile"}); err == nil {
		t.Error("compile without a file must error")
	}
	if err := run([]string{"compile", "a.bbvl", "b.bbvl"}); err == nil {
		t.Error("compile with two files must error")
	}
}

// TestRunCheckSpecFile runs a JobSpec JSON file through check -spec —
// the offline twin of a bbvd submission.
func TestRunCheckSpecFile(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	src := readFile(t, filepath.Join("..", "..", "examples", "bbvl", "treiber.bbvl"))
	spec := api.JobSpec{
		Kind: api.KindCheck, ModelSource: src, ModelName: "treiber.bbvl",
		Threads: 2, Ops: 1, Workers: 1,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	raw := captureStdout(t, func() error {
		return run([]string{"check", "-spec", path})
	})
	var res api.Result
	if err := json.Unmarshal([]byte(raw), &res); err != nil {
		t.Fatalf("check -spec output is not an api.Result: %v\n%s", err, raw)
	}
	if res.Check == nil || !res.Check.Linearizable {
		t.Errorf("spec-file job must report linearizable: %+v", res.Check)
	}

	// Strict decoding: an unknown field in the job file is an error.
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"kind":"check","algorithem":"treiber"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", "-spec", badPath}); err == nil {
		t.Error("unknown field in -spec file must error")
	}
	// -spec is self-contained; combining it with other targets errors.
	if err := run([]string{"check", "-spec", path, "treiber"}); err == nil {
		t.Error("-spec with positional algorithm must error")
	}
}

// TestRunExplain exercises the explain subcommand end to end: a buggy
// object yields a replay-verified distinguishing experiment, a correct
// one reports bisimilarity (the Treiber stack is branching bisimilar to
// its specification at 2x1), and bad flags error.
func TestRunExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	out := captureStdout(t, func() error {
		return run([]string{"explain", "-threads", "2", "-ops", "2", "hm-list-buggy"})
	})
	for _, want := range []string{
		"not branching bisimilar",
		"shortest distinguishing experiment",
		"experiment verified by replay",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, func() error {
		return run([]string{"explain", "-threads", "2", "-ops", "1", "treiber"})
	})
	if !strings.Contains(out, "bisimilar; there is no distinguishing experiment") {
		t.Errorf("explain on an equivalent pair should report bisimilarity:\n%s", out)
	}
	if err := run([]string{"explain", "-kind", "nope", "treiber"}); err == nil {
		t.Error("unknown -kind must error")
	}
	if err := run([]string{"explain"}); err == nil {
		t.Error("missing algorithm must error")
	}
}

// TestRunRefinerFlag pins the -refiner knob: both explicit refiners (and
// auto) produce identical human check output, and a bad name errors.
func TestRunRefinerFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	outputs := make(map[string]string)
	for _, ref := range []string{"auto", "signature", "splitter"} {
		outputs[ref] = captureStdout(t, func() error {
			return run([]string{"check", "-threads", "2", "-ops", "1", "-refiner", ref, "treiber"})
		})
	}
	if outputs["signature"] != outputs["splitter"] || outputs["auto"] != outputs["signature"] {
		t.Errorf("check output differs across refiners:\n--auto--\n%s--signature--\n%s--splitter--\n%s",
			outputs["auto"], outputs["signature"], outputs["splitter"])
	}
	if err := run([]string{"check", "-refiner", "bogus", "treiber"}); err == nil {
		t.Error("unknown -refiner must error")
	}
}

// TestRunCheckPrintsExperiment: a failed linearizability check prints
// the quotient distinguishing experiment next to the counterexample
// history.
func TestRunCheckPrintsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	out := captureStdout(t, func() error {
		return run([]string{"check", "-threads", "2", "-ops", "2", "hm-list-buggy"})
	})
	if !strings.Contains(out, "non-linearizable history:") {
		t.Fatalf("check must print the counterexample:\n%s", out)
	}
	if !strings.Contains(out, "quotient distinguishing experiment:") ||
		!strings.Contains(out, "shortest distinguishing experiment") {
		t.Errorf("check must print the distinguishing experiment:\n%s", out)
	}
}

// TestRunCompareSurfacesExplainOutcome: compare prints the experiment on
// inequivalent quotients. (The error path of bisim.Explain is now
// propagated rather than silently swallowed; if extraction ever failed,
// this run would fail loudly instead of printing a truncated report.)
func TestRunCompareSurfacesExplainOutcome(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	out := captureStdout(t, func() error {
		return run([]string{"compare", "-threads", "2", "-ops", "2", "hm-list-buggy"})
	})
	if !strings.Contains(out, "not branching bisimilar") {
		t.Errorf("compare on a buggy object should explain the inequivalence:\n%s", out)
	}
}
