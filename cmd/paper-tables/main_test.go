package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("listing exhibits: %v", err)
	}
	if err := run([]string{"no-such-exhibit"}); err == nil {
		t.Fatal("unknown exhibit must error")
	}
	if err := run([]string{"-bad-flag"}); err == nil {
		t.Fatal("bad flag must error")
	}
}

func TestRunQuickExhibit(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration-heavy")
	}
	if err := run([]string{"-quick", "table5"}); err != nil {
		t.Fatal(err)
	}
}
