// Command paper-tables regenerates the tables and figures of the paper's
// evaluation (Section VI). With no arguments it lists the available
// exhibits; "all" runs every exhibit in paper order.
//
//	paper-tables [-quick] [-max-states N] [-workers N] all
//	paper-tables [-quick] [-max-states N] [-workers N] table3 fig10 ...
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exhibits"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paper-tables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paper-tables", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run reduced instances (fast demo)")
	maxStates := fs.Int("max-states", 0, "per-instance state budget (0 = default)")
	workers := fs.Int("workers", 0, "exploration workers (0 = all cores, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		fmt.Println("available exhibits:")
		for _, e := range exhibits.All() {
			fmt.Printf("  %-8s %-18s %s\n", e.Name, e.Paper, e.Description)
		}
		fmt.Println("  all      (everything, paper order)")
		return nil
	}
	var selected []exhibits.Exhibit
	for _, name := range names {
		if name == "all" {
			selected = exhibits.All()
			break
		}
		e, err := exhibits.ByName(name)
		if err != nil {
			return err
		}
		selected = append(selected, e)
	}
	opt := exhibits.Options{Quick: *quick, MaxStates: *maxStates, Workers: *workers}
	for _, e := range selected {
		start := time.Now()
		t, err := e.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		fmt.Println(t.Render())
		fmt.Printf("[%s regenerated in %.1fs]\n\n", e.Paper, time.Since(start).Seconds())
	}
	return nil
}
