// Command paper-tables regenerates the tables and figures of the paper's
// evaluation (Section VI). With no arguments it lists the available
// exhibits; "all" runs every exhibit in paper order.
//
//	paper-tables [-quick] [-max-states N] [-workers N] [-stages] all
//	paper-tables [-quick] [-max-states N] [-workers N] [-stages] table3 fig10 ...
//
// -stages appends a per-stage runtime accounting (explorations, quotient
// reductions, equivalence checks, ...) to each exhibit, showing how much
// work the exhibit's artifact sessions served from cache.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/exhibits"
	"repro/internal/statecodec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paper-tables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paper-tables", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run reduced instances (fast demo)")
	maxStates := fs.Int("max-states", 0, "per-instance state budget (0 = default)")
	workers := fs.Int("workers", 0, "exploration workers (0 = all cores, 1 = sequential)")
	stages := fs.Bool("stages", false, "print per-stage runtime totals after each exhibit")
	membudget := fs.String("membudget", "", "resident state-storage budget per exploration, e.g. 2GiB; past it, state storage spills to temp files (default: all in RAM) — exhibit contents are identical for any budget")
	reduction := fs.Bool("reduction", false, "enable the static tau-confluence partial-order reduction in every exploration (verdicts and quotients are identical; raw state counts shrink for IR-carrying programs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var memBytes int64
	if *membudget != "" {
		var err error
		memBytes, err = statecodec.ParseBudget(*membudget)
		if err != nil {
			return fmt.Errorf("bad -membudget: %w", err)
		}
	}
	names := fs.Args()
	if len(names) == 0 {
		fmt.Println("available exhibits:")
		for _, e := range exhibits.All() {
			fmt.Printf("  %-8s %-18s %s\n", e.Name, e.Paper, e.Description)
		}
		fmt.Println("  all      (everything, paper order)")
		return nil
	}
	var selected []exhibits.Exhibit
	for _, name := range names {
		if name == "all" {
			selected = exhibits.All()
			break
		}
		e, err := exhibits.ByName(name)
		if err != nil {
			return err
		}
		selected = append(selected, e)
	}
	opt := exhibits.Options{Quick: *quick, MaxStates: *maxStates, Workers: *workers, MemBudget: memBytes, Reduction: *reduction}
	for _, e := range selected {
		start := time.Now()
		t, err := e.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		fmt.Println(t.Render())
		if *stages {
			printStages(t.Stages)
		}
		fmt.Printf("[%s regenerated in %.1fs]\n\n", e.Paper, time.Since(start).Seconds())
	}
	return nil
}

// printStages aggregates an exhibit's per-stage instrumentation into
// run/cache-hit/total-time totals per stage name.
func printStages(stats []core.StageStat) {
	if len(stats) == 0 {
		return
	}
	type agg struct {
		runs, cached int
		elapsed      time.Duration
	}
	byStage := map[string]*agg{}
	for _, st := range stats {
		a := byStage[st.Stage]
		if a == nil {
			a = &agg{}
			byStage[st.Stage] = a
		}
		if st.Cached {
			a.cached++
		} else {
			a.runs++
			a.elapsed += st.Elapsed
		}
	}
	names := make([]string, 0, len(byStage))
	for name := range byStage {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("stage totals:")
	fmt.Printf("  %-16s %6s %8s %10s\n", "stage", "runs", "cached", "time (s)")
	for _, name := range names {
		a := byStage[name]
		fmt.Printf("  %-16s %6d %8d %10.2f\n", name, a.runs, a.cached, a.elapsed.Seconds())
	}
}
