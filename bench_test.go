package bbv

import (
	"fmt"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/bisim"
	"repro/internal/core"
	"repro/internal/exhibits"
	"repro/internal/ktrace"
	"repro/internal/lts"
	"repro/internal/machine"
	"repro/internal/refine"
)

// ---------------------------------------------------------------------------
// Exhibit benchmarks: one per table and figure of the paper (quick-mode
// instances; run `go run ./cmd/paper-tables all` for the full sweeps).
// ---------------------------------------------------------------------------

func benchExhibit(b *testing.B, name string) {
	b.Helper()
	e, err := exhibits.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := e.Run(exhibits.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty exhibit")
		}
	}
}

func BenchmarkTable1KTraceClassification(b *testing.B) { benchExhibit(b, "table1") }
func BenchmarkTable2Verdicts(b *testing.B)             { benchExhibit(b, "table2") }
func BenchmarkTable3MSQueueLockFree(b *testing.B)      { benchExhibit(b, "table3") }
func BenchmarkTable4HMListLockFree(b *testing.B)       { benchExhibit(b, "table4") }
func BenchmarkTable5HWQueueViolation(b *testing.B)     { benchExhibit(b, "table5") }
func BenchmarkTable6QueueComparison(b *testing.B)      { benchExhibit(b, "table6") }
func BenchmarkTable7WeakVsBranching(b *testing.B)      { benchExhibit(b, "table7") }
func BenchmarkFig6TraceInvisibleLP(b *testing.B)       { benchExhibit(b, "fig6") }
func BenchmarkFig7QuotientDiagnostics(b *testing.B)    { benchExhibit(b, "fig7") }
func BenchmarkFig10QuotientReduction(b *testing.B)     { benchExhibit(b, "fig10") }

// ---------------------------------------------------------------------------
// Engine micro-benchmarks.
// ---------------------------------------------------------------------------

// buildLTS explores one packaged algorithm instance for the micro-benches.
func buildLTS(b *testing.B, id string, threads, ops int, vals []int32) *lts.LTS {
	b.Helper()
	alg, err := algorithms.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	l, err := machine.Explore(alg.Build(algorithms.Config{Threads: threads, Ops: ops, Vals: vals}),
		machine.Options{Threads: threads, Ops: ops})
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkExploreMSQueue measures state-space generation (the CADP
// generator replacement): canonicalization, hashing and interning.
func BenchmarkExploreMSQueue(b *testing.B) {
	alg, err := algorithms.ByID("ms-queue")
	if err != nil {
		b.Fatal(err)
	}
	prog := alg.Build(algorithms.Config{Threads: 2, Ops: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, err := machine.Explore(prog, machine.Options{Threads: 2, Ops: 2})
		if err != nil {
			b.Fatal(err)
		}
		if l.NumStates() == 0 {
			b.Fatal("empty LTS")
		}
	}
}

// BenchmarkExploreParallel sweeps exploration worker counts on the two
// generation-bound workloads of the paper's sweeps — the MS queue
// (~250k states at 2x3 with one value) and the HM list — so the
// parallel-BFS speedup lands in the bench trajectory. w1 is the
// sequential baseline; every worker count produces the identical LTS.
func BenchmarkExploreParallel(b *testing.B) {
	cases := []struct {
		id           string
		threads, ops int
		vals         []int32
	}{
		{"ms-queue", 2, 3, []int32{1}},
		{"hm-list", 2, 2, nil},
	}
	for _, c := range cases {
		alg, err := algorithms.ByID(c.id)
		if err != nil {
			b.Fatal(err)
		}
		prog := alg.Build(algorithms.Config{Threads: c.threads, Ops: c.ops, Vals: c.vals})
		for _, workers := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("%s/%dx%d/w%d", c.id, c.threads, c.ops, workers)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					l, err := machine.Explore(prog, machine.Options{
						Threads: c.threads, Ops: c.ops, Workers: workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if l.NumStates() == 0 {
						b.Fatal("empty LTS")
					}
				}
			})
		}
	}
}

// BenchmarkBranchingPartition measures the signature-refinement core on a
// quarter-million-state system.
func BenchmarkBranchingPartition(b *testing.B) {
	l := buildLTS(b, "ms-queue", 2, 3, []int32{1})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := bisim.Branching(l)
		if p.Num == 0 {
			b.Fatal("empty partition")
		}
	}
}

// BenchmarkDivergenceSensitivePartition adds the τ-SCC divergence flags.
func BenchmarkDivergenceSensitivePartition(b *testing.B) {
	l := buildLTS(b, "treiber-hp-fu", 2, 2, nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := bisim.DivergenceSensitiveBranching(l)
		if p.Num == 0 {
			b.Fatal("empty partition")
		}
	}
}

// BenchmarkWeakPartitionQuotient measures weak bisimulation on a quotient
// (how Table VII is computed).
func BenchmarkWeakPartitionQuotient(b *testing.B) {
	l := buildLTS(b, "ms-queue", 2, 3, []int32{1})
	q, _ := bisim.ReduceBranching(l)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := bisim.Weak(q)
		if p.Num == 0 {
			b.Fatal("empty partition")
		}
	}
}

// BenchmarkQuotientConstruction measures Definition 5.1 quotient building
// given a partition.
func BenchmarkQuotientConstruction(b *testing.B) {
	l := buildLTS(b, "ms-queue", 2, 3, []int32{1})
	p := bisim.Branching(l)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := bisim.Quotient(l, p)
		if q.NumStates() == 0 {
			b.Fatal("empty quotient")
		}
	}
}

// BenchmarkTraceInclusionQuotients measures the Theorem 5.3 refinement
// check between quotients.
func BenchmarkTraceInclusionQuotients(b *testing.B) {
	acts := lts.NewAlphabet()
	alg, err := algorithms.ByID("ms-queue")
	if err != nil {
		b.Fatal(err)
	}
	cfg := algorithms.Config{Threads: 2, Ops: 3, Vals: []int32{1}}
	impl, err := machine.Explore(alg.Build(cfg), machine.Options{Threads: 2, Ops: 3, Acts: acts})
	if err != nil {
		b.Fatal(err)
	}
	spec, err := machine.Explore(alg.Spec(cfg), machine.Options{Threads: 2, Ops: 3, Acts: acts})
	if err != nil {
		b.Fatal(err)
	}
	implQ, _ := bisim.ReduceBranching(impl)
	specQ, _ := bisim.ReduceBranching(spec)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := refine.TraceInclusion(implQ, specQ)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Included {
			b.Fatal("unexpected refinement failure")
		}
	}
}

// BenchmarkKTraceHierarchy measures the ≡ₖ hierarchy computation on the
// MS queue quotient (Table I workload).
func BenchmarkKTraceHierarchy(b *testing.B) {
	l := buildLTS(b, "ms-queue", 2, 3, []int32{1})
	q, _ := bisim.ReduceBranching(l)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := ktrace.Analyze(q, 5)
		if !a.Converged {
			b.Fatal("hierarchy did not converge")
		}
	}
}

// BenchmarkReduceBranching measures the full Definition 5.1 reduction —
// partition refinement plus quotient construction — the unit of work a
// session memoizes per LTS.
func BenchmarkReduceBranching(b *testing.B) {
	l := buildLTS(b, "ms-queue", 2, 3, []int32{1})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, p := bisim.ReduceBranching(l)
		if q.NumStates() == 0 || p.Num == 0 {
			b.Fatal("empty quotient")
		}
	}
}

// BenchmarkDivergenceSensitive measures the Theorem 5.9 core: deciding
// Δ ≈div Δ/≈ on the buggy hazard-pointer Treiber stack (a divergent
// system, so the τ-SCC flags matter).
func BenchmarkDivergenceSensitive(b *testing.B) {
	l := buildLTS(b, "treiber-hp-fu", 2, 2, nil)
	q, _ := bisim.ReduceBranching(l)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bisim.Equivalent(l, q, bisim.KindDivBranching); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionReuse contrasts one-shot checks with an artifact
// session for the Table II per-benchmark workload (linearizability then
// lock-freedom of the same object): the session serves the second
// check's exploration and quotient from the memo.
func BenchmarkSessionReuse(b *testing.B) {
	alg, err := algorithms.ByID("ms-queue")
	if err != nil {
		b.Fatal(err)
	}
	acfg := algorithms.Config{Threads: 2, Ops: 2, Vals: []int32{1}}
	ccfg := core.Config{Threads: 2, Ops: 2}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.CheckLinearizability(alg.Build(acfg), alg.Spec(acfg), ccfg); err != nil {
				b.Fatal(err)
			}
			if _, err := core.CheckLockFreeAuto(alg.Build(acfg), ccfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess := core.NewSession(ccfg)
			impl := alg.Build(acfg)
			if _, err := sess.CheckLinearizability(impl, alg.Spec(acfg)); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.CheckLockFreeAuto(impl); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTauSCC measures the τ-cycle (lock-freedom witness) analysis.
func BenchmarkTauSCC(b *testing.B) {
	l := buildLTS(b, "ms-queue", 2, 3, []int32{1})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scc := lts.TauSCCs(l)
		if scc.NumComps == 0 {
			b.Fatal("no components")
		}
	}
}
